//! Backward live-variable analysis.
//!
//! A local is *live* at a point if its current value may be read later.
//! The use-after-free detector contrasts liveness of pointers with the
//! storage/initializedness of their pointees.

use rstudy_mir::visit::Location;
use rstudy_mir::{
    Body, Operand, Place, Rvalue, Statement, StatementKind, Terminator, TerminatorKind,
};

use crate::bitset::BitSet;
use crate::dataflow::{self, Analysis, Direction, Results};

/// The live-locals dataflow problem.
#[derive(Debug, Clone, Copy, Default)]
pub struct Liveness;

impl Liveness {
    /// Solves liveness for `body`.
    pub fn solve(body: &Body) -> Results<Liveness> {
        rstudy_telemetry::record("analysis.liveness.bitset_bits", body.locals.len() as u64);
        dataflow::solve(Liveness, body)
    }
}

fn gen_operand(state: &mut BitSet, op: &Operand) {
    if let Some(place) = op.place() {
        gen_place_read(state, place);
    }
}

/// Reading `place` uses its base local and any index locals.
fn gen_place_read(state: &mut BitSet, place: &Place) {
    state.insert(place.local.index());
    for elem in &place.projection {
        if let rstudy_mir::ProjElem::Index(l) = elem {
            state.insert(l.index());
        }
    }
}

/// Writing to `place` kills the base local only when the write is direct
/// (no projections); writing through a projection still *uses* the base.
fn apply_write(state: &mut BitSet, place: &Place) {
    if place.is_local() {
        state.remove(place.local.index());
    } else {
        gen_place_read(state, place);
    }
}

impl Analysis for Liveness {
    type Domain = BitSet;

    fn name(&self) -> &'static str {
        "liveness"
    }

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, body: &Body) -> BitSet {
        BitSet::new(body.locals.len())
    }

    fn initialize(&self, _body: &Body, state: &mut BitSet) {
        // Only the return place matters at exit.
        state.insert(0);
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn apply_statement(&self, state: &mut BitSet, stmt: &Statement, _loc: Location) {
        match &stmt.kind {
            StatementKind::Assign(place, rv) => {
                apply_write(state, place);
                match rv {
                    Rvalue::Use(op) | Rvalue::UnaryOp(_, op) | Rvalue::Cast(op, _) => {
                        gen_operand(state, op)
                    }
                    Rvalue::BinaryOp(_, a, b) => {
                        gen_operand(state, a);
                        gen_operand(state, b);
                    }
                    Rvalue::Ref(_, p) | Rvalue::AddrOf(_, p) | Rvalue::Len(p) => {
                        gen_place_read(state, p)
                    }
                    Rvalue::Aggregate(ops) => {
                        for op in ops {
                            gen_operand(state, op);
                        }
                    }
                }
            }
            StatementKind::StorageDead(l) => {
                // Past the end of storage the old value cannot be read.
                state.remove(l.index());
            }
            StatementKind::StorageLive(_) | StatementKind::Nop => {}
        }
    }

    fn apply_terminator(&self, state: &mut BitSet, term: &Terminator, _loc: Location) {
        match &term.kind {
            TerminatorKind::SwitchInt { discr, .. } => gen_operand(state, discr),
            TerminatorKind::Call {
                func,
                args,
                destination,
                ..
            } => {
                apply_write(state, destination);
                for a in args {
                    gen_operand(state, a);
                }
                if let rstudy_mir::Callee::Ptr(l) = func {
                    state.insert(l.index());
                }
            }
            TerminatorKind::Drop { place, .. } => gen_place_read(state, place),
            TerminatorKind::Goto { .. } | TerminatorKind::Return | TerminatorKind::Unreachable => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::visit::Location;
    use rstudy_mir::{BasicBlock, BinOp, Operand, Rvalue, Ty};

    #[test]
    fn straightline_liveness() {
        // _1 = 1; _2 = _1 + 1; _0 = _2; return
        let mut b = BodyBuilder::new("f", 0, Ty::Int);
        let x = b.local("x", Ty::Int);
        let y = b.local("y", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.assign(
            y,
            Rvalue::BinaryOp(BinOp::Add, Operand::copy(x), Operand::int(1)),
        );
        b.assign(rstudy_mir::Place::RETURN, Rvalue::Use(Operand::copy(y)));
        b.ret();
        let body = b.finish();
        let results = Liveness::solve(&body);

        let before = |i| {
            results.state_before(
                &body,
                Location {
                    block: BasicBlock(0),
                    statement_index: i,
                },
            )
        };
        // Before stmt 0 nothing user-defined is live.
        assert!(!before(0).contains(x.index()));
        // Between stmt 0 and 1, x is live.
        assert!(before(1).contains(x.index()));
        assert!(!before(1).contains(y.index()));
        // Between stmt 1 and 2, y is live and x is dead.
        assert!(before(2).contains(y.index()));
        assert!(!before(2).contains(x.index()));
    }

    #[test]
    fn branches_union_liveness() {
        // x is used on one arm only; it is still live before the switch.
        let mut b = BodyBuilder::new("f", 0, Ty::Int);
        let x = b.local("x", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(3)));
        let (t, e) = b.branch_bool(Operand::int(1));
        b.switch_to(t);
        b.assign(rstudy_mir::Place::RETURN, Rvalue::Use(Operand::copy(x)));
        b.ret();
        b.switch_to(e);
        b.assign(rstudy_mir::Place::RETURN, Rvalue::Use(Operand::int(0)));
        b.ret();
        let body = b.finish();
        let results = Liveness::solve(&body);
        let after_assign = results.state_before(
            &body,
            Location {
                block: BasicBlock(0),
                statement_index: 1,
            },
        );
        assert!(after_assign.contains(x.index()));
    }

    #[test]
    fn storage_dead_kills_liveness() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.storage_live(x);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.storage_dead(x);
        b.ret();
        let body = b.finish();
        let results = Liveness::solve(&body);
        // x's value is never read: dead even right after the assignment.
        let after = results.state_before(
            &body,
            Location {
                block: BasicBlock(0),
                statement_index: 2,
            },
        );
        assert!(!after.contains(x.index()));
    }

    #[test]
    fn drop_counts_as_use() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Named("S".into()));
        b.assign(x, Rvalue::Use(Operand::int(0)));
        let next = b.new_block();
        b.drop_place(x, next);
        b.switch_to(next);
        b.ret();
        let body = b.finish();
        let results = Liveness::solve(&body);
        let before_drop = results.state_before(
            &body,
            Location {
                block: BasicBlock(0),
                statement_index: 1,
            },
        );
        assert!(before_drop.contains(x.index()));
    }

    #[test]
    fn write_through_projection_keeps_base_live() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        b.assign(
            rstudy_mir::Place::from_local(p).deref(),
            Rvalue::Use(Operand::int(1)),
        );
        b.ret();
        let body = b.finish();
        let results = Liveness::solve(&body);
        let entry = results.state_before(
            &body,
            Location {
                block: BasicBlock(0),
                statement_index: 0,
            },
        );
        assert!(entry.contains(p.index()), "deref write uses the pointer");
    }
}
