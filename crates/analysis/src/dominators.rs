//! Dominator tree computation (Cooper–Harvey–Kennedy).

use rstudy_mir::{BasicBlock, Body};

use crate::cfg::Cfg;

/// The dominator tree of a body's CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block; `None` for the entry and for
    /// unreachable blocks.
    idom: Vec<Option<BasicBlock>>,
    /// Reverse post-order number per block (`usize::MAX` if unreachable).
    rpo_number: Vec<usize>,
}

impl Dominators {
    /// Computes dominators with the Cooper–Harvey–Kennedy iterative scheme.
    pub fn new(body: &Body) -> Dominators {
        let cfg = Cfg::new(body);
        Dominators::with_cfg(body, &cfg)
    }

    /// Computes dominators using a precomputed CFG.
    pub fn with_cfg(body: &Body, cfg: &Cfg) -> Dominators {
        let n = body.blocks.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, bb) in rpo.iter().enumerate() {
            rpo_number[bb.index()] = i;
        }

        let mut idom: Vec<Option<BasicBlock>> = vec![None; n];
        if n == 0 {
            return Dominators { idom, rpo_number };
        }
        idom[BasicBlock::ENTRY.index()] = Some(BasicBlock::ENTRY);

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BasicBlock> = None;
                for &pred in cfg.predecessors(bb) {
                    if idom[pred.index()].is_none() {
                        continue; // pred not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(cur) => intersect(&idom, &rpo_number, pred, cur),
                    });
                }
                if let Some(d) = new_idom {
                    if idom[bb.index()] != Some(d) {
                        idom[bb.index()] = Some(d);
                        changed = true;
                    }
                }
            }
        }
        // By convention the entry has no immediate dominator.
        idom[BasicBlock::ENTRY.index()] = None;
        Dominators { idom, rpo_number }
    }

    /// The immediate dominator of `bb` (`None` for the entry block and
    /// unreachable blocks).
    pub fn immediate_dominator(&self, bb: BasicBlock) -> Option<BasicBlock> {
        self.idom[bb.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BasicBlock, b: BasicBlock) -> bool {
        if self.rpo_number[b.index()] == usize::MAX {
            return false; // unreachable blocks are dominated by nothing
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Returns `true` if `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BasicBlock) -> bool {
        self.rpo_number[bb.index()] != usize::MAX
    }
}

fn intersect(
    idom: &[Option<BasicBlock>],
    rpo_number: &[usize],
    mut a: BasicBlock,
    mut b: BasicBlock,
) -> BasicBlock {
    while a != b {
        while rpo_number[a.index()] > rpo_number[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_number[b.index()] > rpo_number[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{Operand, Ty};

    fn diamond() -> Body {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.goto(join);
        b.switch_to(e);
        b.goto(join);
        b.switch_to(join);
        b.ret();
        b.finish()
    }

    #[test]
    fn diamond_dominators() {
        let body = diamond();
        let dom = Dominators::new(&body);
        let (b0, b1, b2, b3) = (BasicBlock(0), BasicBlock(1), BasicBlock(2), BasicBlock(3));
        assert_eq!(dom.immediate_dominator(b0), None);
        assert_eq!(dom.immediate_dominator(b1), Some(b0));
        assert_eq!(dom.immediate_dominator(b2), Some(b0));
        assert_eq!(dom.immediate_dominator(b3), Some(b0));
        assert!(dom.dominates(b0, b3));
        assert!(!dom.dominates(b1, b3));
        assert!(dom.dominates(b3, b3), "dominance is reflexive");
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let header = b.goto_cont();
        let body_bb = b.new_block();
        let exit = b.new_block();
        b.switch_int(Operand::int(0), vec![(0, body_bb)], exit);
        b.switch_to(body_bb);
        b.goto(header);
        b.switch_to(exit);
        b.ret();
        let body = b.finish();
        let dom = Dominators::new(&body);
        assert!(dom.dominates(header, body_bb));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body_bb, exit));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.ret();
        let dead = b.new_block();
        b.switch_to(dead);
        b.ret();
        let body = b.finish();
        let dom = Dominators::new(&body);
        assert!(dom.is_reachable(BasicBlock(0)));
        assert!(!dom.is_reachable(BasicBlock(1)));
        assert!(!dom.dominates(BasicBlock(0), BasicBlock(1)));
    }
}
