//! Call graph over a whole program.
//!
//! Both detectors in the paper perform interprocedural analysis; the call
//! graph provides the edges, including functions passed by name to
//! `thread::spawn` and `once::call_once`.

use std::collections::{BTreeMap, BTreeSet};

use rstudy_mir::visit::Location;
use rstudy_mir::{Callee, Const, Operand, Program, TerminatorKind};

/// One call edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Calling function.
    pub caller: String,
    /// Called function.
    pub callee: String,
    /// Where in the caller the call happens.
    pub location: Location,
    /// Whether the edge comes from `thread::spawn`/`once::call_once`
    /// rather than a direct call.
    pub via_closure: bool,
}

/// The program's call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    edges: Vec<CallSite>,
    callees: BTreeMap<String, BTreeSet<String>>,
    callers: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn build(program: &Program) -> CallGraph {
        let mut g = CallGraph::default();
        for (name, body) in program.iter() {
            for bb in body.block_indices() {
                let data = body.block(bb);
                let Some(term) = &data.terminator else {
                    continue;
                };
                let location = Location {
                    block: bb,
                    statement_index: data.statements.len(),
                };
                if let TerminatorKind::Call { func, args, .. } = &term.kind {
                    match func {
                        Callee::Fn(callee) => {
                            g.add_edge(name, callee, location, false);
                        }
                        Callee::Intrinsic(
                            rstudy_mir::Intrinsic::ThreadSpawn
                            | rstudy_mir::Intrinsic::OnceCallOnce,
                        ) => {
                            for a in args {
                                if let Operand::Const(Const::Fn(callee)) = a {
                                    g.add_edge(name, callee, location, true);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        g
    }

    fn add_edge(&mut self, caller: &str, callee: &str, location: Location, via_closure: bool) {
        self.edges.push(CallSite {
            caller: caller.to_owned(),
            callee: callee.to_owned(),
            location,
            via_closure,
        });
        self.callees
            .entry(caller.to_owned())
            .or_default()
            .insert(callee.to_owned());
        self.callers
            .entry(callee.to_owned())
            .or_default()
            .insert(caller.to_owned());
    }

    /// All edges in declaration order.
    pub fn edges(&self) -> &[CallSite] {
        &self.edges
    }

    /// Functions called (directly or via spawn) by `name`.
    pub fn callees(&self, name: &str) -> impl Iterator<Item = &str> {
        self.callees
            .get(name)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// Functions that call `name`.
    pub fn callers(&self, name: &str) -> impl Iterator<Item = &str> {
        self.callers
            .get(name)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// Functions reachable from `root` (including `root` itself).
    pub fn reachable_from(&self, root: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root.to_owned()];
        while let Some(f) = stack.pop() {
            if seen.insert(f.clone()) {
                for callee in self.callees(&f) {
                    if !seen.contains(callee) {
                        stack.push(callee.to_owned());
                    }
                }
            }
        }
        seen
    }

    /// Returns `true` if `name` can (transitively) call itself.
    pub fn is_recursive(&self, name: &str) -> bool {
        self.callees(name)
            .any(|c| c == name || self.reachable_from(c).contains(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{Intrinsic, Place, Ty};

    fn leaf(name: &str) -> rstudy_mir::Body {
        let mut b = BodyBuilder::new(name, 0, Ty::Unit);
        b.ret();
        b.finish()
    }

    fn caller(name: &str, callee: &str) -> rstudy_mir::Body {
        let mut b = BodyBuilder::new(name, 0, Ty::Unit);
        b.call_fn_cont(callee, vec![], Place::RETURN);
        b.ret();
        b.finish()
    }

    #[test]
    fn direct_edges_and_reachability() {
        let p = Program::from_bodies([caller("main", "a"), caller("a", "b"), leaf("b"), leaf("c")]);
        let g = CallGraph::build(&p);
        assert_eq!(g.callees("main").collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(g.callers("b").collect::<Vec<_>>(), vec!["a"]);
        let reach = g.reachable_from("main");
        assert!(reach.contains("b"));
        assert!(!reach.contains("c"));
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn spawn_creates_closure_edges() {
        let mut b = BodyBuilder::new("main", 0, Ty::Unit);
        let h = b.local("h", Ty::JoinHandle(Box::new(Ty::Unit)));
        b.storage_live(h);
        b.call_intrinsic_cont(
            Intrinsic::ThreadSpawn,
            vec![Operand::Const(Const::Fn("worker".into())), Operand::int(0)],
            h,
        );
        b.ret();
        let p = Program::from_bodies([b.finish(), leaf("worker")]);
        let g = CallGraph::build(&p);
        let edge = &g.edges()[0];
        assert_eq!(edge.callee, "worker");
        assert!(edge.via_closure);
        assert!(g.reachable_from("main").contains("worker"));
    }

    #[test]
    fn recursion_detection() {
        let p = Program::from_bodies([caller("a", "b"), caller("b", "a"), leaf("c")]);
        let g = CallGraph::build(&p);
        assert!(g.is_recursive("a"));
        assert!(g.is_recursive("b"));
        assert!(!g.is_recursive("c"));
    }
}
