//! A flow-sensitive model of heap allocations: which allocation sites may
//! already be freed, and which have been initialized, at each program point.
//!
//! Shared by the use-after-free, double-free, invalid-free and
//! uninitialized-read detectors. The analysis owns its [`HeapModel`] and
//! [`PointsTo`] inputs behind [`Arc`]s so solved [`Results`] carry no body
//! lifetime and can live in the shared [`crate::cache::AnalysisCache`].

use std::sync::Arc;

use crate::bitset::BitSet;
use crate::dataflow::{self, Analysis, Direction, Results};
use crate::points_to::{MemRoot, PointsTo};
use rstudy_mir::visit::Location;
use rstudy_mir::{
    Body, Callee, Intrinsic, Local, Operand, Statement, StatementKind, Terminator, TerminatorKind,
};

/// The allocation sites (`alloc` call locations) of one body, indexed densely.
#[derive(Debug, Clone, Default)]
pub struct HeapModel {
    sites: Vec<Location>,
}

impl HeapModel {
    /// Collects all `alloc` call sites in `body`.
    pub fn collect(body: &Body) -> HeapModel {
        let mut sites = Vec::new();
        for bb in body.block_indices() {
            let data = body.block(bb);
            if let Some(term) = &data.terminator {
                if let TerminatorKind::Call {
                    func: Callee::Intrinsic(Intrinsic::Alloc),
                    ..
                } = &term.kind
                {
                    sites.push(Location {
                        block: bb,
                        statement_index: data.statements.len(),
                    });
                }
            }
        }
        HeapModel { sites }
    }

    /// Number of allocation sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` if the body performs no heap allocation.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The dense index of an allocation site, if `loc` is one.
    pub fn index_of(&self, loc: Location) -> Option<usize> {
        self.sites.iter().position(|&s| s == loc)
    }

    /// The allocation site at dense index `i`.
    pub fn site(&self, i: usize) -> Location {
        self.sites[i]
    }

    /// Dense indices of the sites a pointer may reference.
    pub fn sites_of_pointer(&self, pt: &PointsTo, ptr: Local) -> Vec<usize> {
        pt.targets(ptr)
            .iter()
            .filter_map(|root| match root {
                MemRoot::Heap(loc) => self.index_of(*loc),
                _ => None,
            })
            .collect()
    }
}

/// Per-point heap facts: allocation sites that may be freed and sites that
/// may have been written (initialized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapFacts {
    /// Sites whose memory may already be deallocated.
    pub freed: BitSet,
    /// Sites whose memory may have been initialized by some write.
    pub written: BitSet,
}

/// The dataflow problem computing [`HeapFacts`].
#[derive(Debug, Clone)]
pub struct HeapState {
    model: Arc<HeapModel>,
    points_to: Arc<PointsTo>,
}

impl HeapState {
    /// Creates the analysis over a body's heap model and points-to results.
    pub fn new(model: Arc<HeapModel>, points_to: Arc<PointsTo>) -> HeapState {
        HeapState { model, points_to }
    }

    /// Solves the analysis for `body`.
    pub fn solve(self, body: &Body) -> Results<HeapState> {
        dataflow::solve(self, body)
    }

    fn mark(&self, set: &mut BitSet, ptr: Local) {
        for i in self.model.sites_of_pointer(&self.points_to, ptr) {
            set.insert(i);
        }
    }
}

fn arg_local(args: &[Operand], idx: usize) -> Option<Local> {
    args.get(idx)
        .and_then(Operand::place)
        .filter(|p| p.is_local())
        .map(|p| p.local)
}

impl Analysis for HeapState {
    type Domain = HeapFacts;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _body: &Body) -> HeapFacts {
        HeapFacts {
            freed: BitSet::new(self.model.len()),
            written: BitSet::new(self.model.len()),
        }
    }

    fn join(&self, into: &mut HeapFacts, from: &HeapFacts) -> bool {
        let a = into.freed.union_with(&from.freed);
        let b = into.written.union_with(&from.written);
        a || b
    }

    fn apply_statement(&self, state: &mut HeapFacts, stmt: &Statement, _loc: Location) {
        // A plain `(*p) = v` initializes the pointee (and, when overwriting
        // a live value, drops it — the invalid-free detector looks at the
        // pre-state of exactly these statements).
        if let StatementKind::Assign(place, _) = &stmt.kind {
            if place.has_deref() {
                self.mark(&mut state.written, place.local);
            }
        }
    }

    fn apply_terminator(&self, state: &mut HeapFacts, term: &Terminator, loc: Location) {
        if let TerminatorKind::Call {
            func: Callee::Intrinsic(i),
            args,
            ..
        } = &term.kind
        {
            match i {
                Intrinsic::Alloc => {
                    // A fresh allocation from this site: reset its facts.
                    if let Some(idx) = self.model.index_of(loc) {
                        state.freed.remove(idx);
                        state.written.remove(idx);
                    }
                }
                Intrinsic::Dealloc => {
                    if let Some(p) = arg_local(args, 0) {
                        self.mark(&mut state.freed, p);
                    }
                }
                Intrinsic::PtrWrite => {
                    if let Some(p) = arg_local(args, 0) {
                        self.mark(&mut state.written, p);
                    }
                }
                Intrinsic::PtrCopyNonoverlapping => {
                    if let Some(p) = arg_local(args, 1) {
                        self.mark(&mut state.written, p);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{BasicBlock, Ty};

    fn solve(body: &Body) -> (Arc<HeapModel>, Results<HeapState>) {
        let model = Arc::new(HeapModel::collect(body));
        let pt = Arc::new(PointsTo::analyze(body));
        let results = HeapState::new(Arc::clone(&model), pt).solve(body);
        (model, results)
    }

    /// alloc; ptr::write; dealloc; then observe facts at each stage.
    #[test]
    fn tracks_write_then_free() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        let unit = b.temp(Ty::Unit);
        b.storage_live(p);
        b.call_intrinsic_cont(Intrinsic::Alloc, vec![Operand::int(1)], p);
        b.storage_live(unit);
        b.call_intrinsic_cont(
            Intrinsic::PtrWrite,
            vec![Operand::copy(p), Operand::int(5)],
            unit,
        );
        b.call_intrinsic_cont(Intrinsic::Dealloc, vec![Operand::copy(p)], unit);
        b.nop();
        b.ret();
        let body = b.finish();

        let (model, results) = solve(&body);
        assert_eq!(model.len(), 1);

        // Right after the write (start of bb2): written, not freed.
        let after_write = results.state_before(
            &body,
            Location {
                block: BasicBlock(2),
                statement_index: 0,
            },
        );
        assert!(after_write.written.contains(0));
        assert!(!after_write.freed.contains(0));

        // After the dealloc (start of bb3): freed.
        let after_free = results.state_before(
            &body,
            Location {
                block: BasicBlock(3),
                statement_index: 0,
            },
        );
        assert!(after_free.freed.contains(0));
    }

    #[test]
    fn plain_deref_assign_counts_as_write() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        b.storage_live(p);
        b.call_intrinsic_cont(Intrinsic::Alloc, vec![Operand::int(1)], p);
        b.in_unsafe(|b| {
            b.assign(
                rstudy_mir::Place::from_local(p).deref(),
                rstudy_mir::Rvalue::Use(Operand::int(9)),
            )
        });
        b.nop();
        b.ret();
        let body = b.finish();
        let (_, results) = solve(&body);
        let after = results.state_before(
            &body,
            Location {
                block: BasicBlock(1),
                statement_index: 2,
            },
        );
        assert!(after.written.contains(0));
    }

    #[test]
    fn realloc_in_loop_resets_facts() {
        // loop { p = alloc(1); dealloc(p) } — at the alloc the site is fresh.
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        let unit = b.temp(Ty::Unit);
        b.storage_live(p);
        b.storage_live(unit);
        let header = b.goto_cont();
        b.call_intrinsic_cont(Intrinsic::Alloc, vec![Operand::int(1)], p);
        let after_alloc = b.current_block();
        b.call_intrinsic_cont(Intrinsic::Dealloc, vec![Operand::copy(p)], unit);
        b.goto(header);
        let body = b.finish();
        let (_, results) = solve(&body);
        // Right after the alloc (entry of the following block), the site is
        // not freed even though the loop's previous iteration freed it.
        let state = results.state_before(
            &body,
            Location {
                block: after_alloc,
                statement_index: 0,
            },
        );
        assert!(!state.freed.contains(0));
    }
}
