//! Flow-insensitive, field-insensitive Andersen-style points-to analysis,
//! computed per function.
//!
//! The paper's use-after-free detector "conduct[s] a points-to analysis to
//! maintain which variable [each pointer] points to"; this module is that
//! component. Pointer-typed arguments receive a symbolic
//! [`MemRoot::ArgPointee`] so callers can substitute actuals during
//! interprocedural resolution, and lock guards inherit the points-to set of
//! the lock reference they were created from — which is exactly the lock
//! identity the double-lock detector needs.

use std::collections::{BTreeMap, BTreeSet};

use rstudy_mir::visit::Location;
use rstudy_mir::{
    Body, Callee, Intrinsic, Local, Operand, Place, Rvalue, StatementKind, TerminatorKind,
};

/// An abstract memory object a pointer may reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemRoot {
    /// The stack slot of a local in this function.
    Local(Local),
    /// A heap allocation, identified by its `alloc` call site.
    Heap(Location),
    /// The unknown memory behind a pointer-typed argument.
    ArgPointee(Local),
    /// Anything (result of unmodelled operations).
    Unknown,
}

impl std::fmt::Display for MemRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemRoot::Local(l) => write!(f, "{l}"),
            MemRoot::Heap(loc) => write!(f, "heap@{loc}"),
            MemRoot::ArgPointee(l) => write!(f, "*{l}"),
            MemRoot::Unknown => f.write_str("?"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Constraint {
    /// `dst ⊇ {root}`
    AddrOf(Local, MemRoot),
    /// `dst ⊇ src`
    Copy(Local, Local),
    /// `dst ⊇ pts(t) for t in src` (i.e. `dst = *src`)
    Load(Local, Local),
    /// `pts(t) ⊇ src for t in dst` (i.e. `*dst = src`)
    Store(Local, Local),
    /// `pts(t) ⊇ {root} for t in dst` (i.e. `*dst = &root`)
    StoreRoot(Local, MemRoot),
}

/// Points-to results for one body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointsTo {
    /// Per-local points-to sets.
    locals: Vec<BTreeSet<MemRoot>>,
    /// Points-to sets of memory roots (what the memory *contains*),
    /// for roots that hold pointers.
    cells: BTreeMap<MemRoot, BTreeSet<MemRoot>>,
}

impl PointsTo {
    /// Computes points-to sets for `body`.
    pub fn analyze(body: &Body) -> PointsTo {
        let constraints = collect_constraints(body);
        let mut pt = PointsTo {
            locals: vec![BTreeSet::new(); body.locals.len()],
            cells: BTreeMap::new(),
        };
        // Seed pointer-typed arguments with symbolic pointees.
        for arg in body.args() {
            if body.local_decl(arg).ty.is_pointer_like() {
                pt.locals[arg.index()].insert(MemRoot::ArgPointee(arg));
            }
        }
        // Chaotic iteration to fixpoint (constraint set is small per body).
        let mut changed = true;
        let mut iterations = 0u64;
        while changed {
            changed = false;
            iterations += 1;
            for c in &constraints {
                match c {
                    Constraint::AddrOf(dst, root) => {
                        changed |= pt.locals[dst.index()].insert(*root);
                    }
                    Constraint::Copy(dst, src) => {
                        let add: Vec<MemRoot> = pt.locals[src.index()].iter().copied().collect();
                        for r in add {
                            changed |= pt.locals[dst.index()].insert(r);
                        }
                    }
                    Constraint::Load(dst, src) => {
                        let roots: Vec<MemRoot> = pt.locals[src.index()].iter().copied().collect();
                        for root in roots {
                            let add: Vec<MemRoot> =
                                pt.cell_contents(root).iter().copied().collect();
                            for r in add {
                                changed |= pt.locals[dst.index()].insert(r);
                            }
                        }
                    }
                    Constraint::Store(dst, src) => {
                        let roots: Vec<MemRoot> = pt.locals[dst.index()].iter().copied().collect();
                        let add: Vec<MemRoot> = pt.locals[src.index()].iter().copied().collect();
                        for root in roots {
                            let cell = pt.cells.entry(root).or_default();
                            for &r in &add {
                                changed |= cell.insert(r);
                            }
                        }
                    }
                    Constraint::StoreRoot(dst, root) => {
                        let targets: Vec<MemRoot> =
                            pt.locals[dst.index()].iter().copied().collect();
                        for t in targets {
                            changed |= pt.cells.entry(t).or_default().insert(*root);
                        }
                    }
                }
            }
        }
        if rstudy_telemetry::enabled() {
            rstudy_telemetry::counter("analysis.points-to.solves", 1);
            rstudy_telemetry::counter("analysis.points-to.constraints", constraints.len() as u64);
            rstudy_telemetry::record("analysis.points-to.iterations", iterations);
            let set_sizes: u64 = pt.locals.iter().map(|s| s.len() as u64).sum();
            rstudy_telemetry::record("analysis.points-to.target_sets_total", set_sizes);
        }
        pt
    }

    /// The memory objects `local` may point to.
    pub fn targets(&self, local: Local) -> &BTreeSet<MemRoot> {
        &self.locals[local.index()]
    }

    /// What a memory root may contain (for roots that store pointers).
    pub fn cell_contents(&self, root: MemRoot) -> &BTreeSet<MemRoot> {
        static EMPTY: std::sync::OnceLock<BTreeSet<MemRoot>> = std::sync::OnceLock::new();
        self.cells
            .get(&root)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Returns `true` if `a` and `b` may alias (share any target).
    pub fn may_alias(&self, a: Local, b: Local) -> bool {
        let (ta, tb) = (self.targets(a), self.targets(b));
        ta.contains(&MemRoot::Unknown)
            || tb.contains(&MemRoot::Unknown)
            || ta.iter().any(|t| tb.contains(t))
    }
}

fn place_base_value(place: &Place) -> PlaceShape {
    if place.has_deref() {
        PlaceShape::ThroughPointer(place.local)
    } else {
        PlaceShape::Direct(place.local)
    }
}

enum PlaceShape {
    /// The place is (part of) the local itself.
    Direct(Local),
    /// The place is behind a pointer held in the local.
    ThroughPointer(Local),
}

fn collect_constraints(body: &Body) -> Vec<Constraint> {
    let mut cs = Vec::new();
    for bb in body.block_indices() {
        let data = body.block(bb);
        for (i, stmt) in data.statements.iter().enumerate() {
            let _loc = Location {
                block: bb,
                statement_index: i,
            };
            if let StatementKind::Assign(place, rv) = &stmt.kind {
                collect_assign(body, place, rv, &mut cs);
            }
        }
        if let Some(term) = &data.terminator {
            let loc = Location {
                block: bb,
                statement_index: data.statements.len(),
            };
            if let TerminatorKind::Call {
                func,
                args,
                destination,
                ..
            } = &term.kind
            {
                collect_call(body, func, args, destination, loc, &mut cs);
            }
        }
    }
    cs
}

fn collect_assign(body: &Body, place: &Place, rv: &Rvalue, cs: &mut Vec<Constraint>) {
    match place_base_value(place) {
        PlaceShape::Direct(dst) => match rv {
            Rvalue::Ref(_, p) | Rvalue::AddrOf(_, p) => match place_base_value(p) {
                // &x — points directly at x's slot.
                PlaceShape::Direct(x) => cs.push(Constraint::AddrOf(dst, MemRoot::Local(x))),
                // &(*q).f — interior pointer into whatever q points to.
                PlaceShape::ThroughPointer(q) => cs.push(Constraint::Copy(dst, q)),
            },
            Rvalue::Use(op) | Rvalue::Cast(op, _) => {
                if let Some(p) = op.place() {
                    match place_base_value(p) {
                        PlaceShape::Direct(src) => {
                            if pointerish(body, src) || pointerish(body, dst) {
                                cs.push(Constraint::Copy(dst, src));
                            }
                        }
                        PlaceShape::ThroughPointer(src) => cs.push(Constraint::Load(dst, src)),
                    }
                }
            }
            Rvalue::Aggregate(ops) => {
                for op in ops {
                    if let Some(p) = op.place() {
                        if let PlaceShape::Direct(src) = place_base_value(p) {
                            if pointerish(body, src) {
                                cs.push(Constraint::Copy(dst, src));
                            }
                        }
                    }
                }
            }
            Rvalue::BinaryOp(op, a, _) if *op == rstudy_mir::BinOp::Offset => {
                // Pointer arithmetic stays within the same object.
                if let Some(p) = a.place() {
                    if let PlaceShape::Direct(src) = place_base_value(p) {
                        cs.push(Constraint::Copy(dst, src));
                    }
                }
            }
            _ => {}
        },
        PlaceShape::ThroughPointer(dst_ptr) => match rv {
            Rvalue::Ref(_, p) | Rvalue::AddrOf(_, p) => match place_base_value(p) {
                PlaceShape::Direct(x) => cs.push(Constraint::StoreRoot(dst_ptr, MemRoot::Local(x))),
                PlaceShape::ThroughPointer(_) => {
                    cs.push(Constraint::StoreRoot(dst_ptr, MemRoot::Unknown))
                }
            },
            Rvalue::Use(op) | Rvalue::Cast(op, _) => {
                if let Some(p) = op.place() {
                    if let PlaceShape::Direct(src) = place_base_value(p) {
                        if pointerish(body, src) {
                            cs.push(Constraint::Store(dst_ptr, src));
                        }
                    }
                }
            }
            _ => {}
        },
    }
}

fn collect_call(
    body: &Body,
    func: &Callee,
    args: &[Operand],
    destination: &Place,
    loc: Location,
    cs: &mut Vec<Constraint>,
) {
    let dst = match place_base_value(destination) {
        PlaceShape::Direct(d) => d,
        PlaceShape::ThroughPointer(p) => {
            // Result stored through a pointer: be conservative.
            cs.push(Constraint::StoreRoot(p, MemRoot::Unknown));
            return;
        }
    };
    match func {
        Callee::Intrinsic(Intrinsic::Alloc | Intrinsic::ArcNew) => {
            cs.push(Constraint::AddrOf(dst, MemRoot::Heap(loc)));
        }
        Callee::Intrinsic(Intrinsic::ArcClone) => {
            if let Some(p) = args.first().and_then(Operand::place) {
                match place_base_value(p) {
                    PlaceShape::Direct(src) => cs.push(Constraint::Copy(dst, src)),
                    PlaceShape::ThroughPointer(src) => cs.push(Constraint::Load(dst, src)),
                }
            }
        }
        Callee::Intrinsic(
            Intrinsic::MutexLock | Intrinsic::RwLockRead | Intrinsic::RwLockWrite,
        ) => {
            // The guard's identity is the lock it guards.
            if let Some(p) = args.first().and_then(Operand::place) {
                match place_base_value(p) {
                    PlaceShape::Direct(src) => cs.push(Constraint::Copy(dst, src)),
                    PlaceShape::ThroughPointer(src) => cs.push(Constraint::Load(dst, src)),
                }
            }
        }
        Callee::Intrinsic(Intrinsic::PtrRead) => {
            if let Some(p) = args.first().and_then(Operand::place) {
                if let PlaceShape::Direct(src) = place_base_value(p) {
                    cs.push(Constraint::Load(dst, src));
                }
            }
        }
        Callee::Intrinsic(Intrinsic::PtrWrite) => {
            if let (Some(ptr), Some(val)) = (
                args.first().and_then(Operand::place),
                args.get(1).and_then(Operand::place),
            ) {
                if let (PlaceShape::Direct(d), PlaceShape::Direct(s)) =
                    (place_base_value(ptr), place_base_value(val))
                {
                    if pointerish(body, s) {
                        cs.push(Constraint::Store(d, s));
                    }
                }
            }
        }
        Callee::Intrinsic(_) => {
            if pointerish(body, dst) {
                cs.push(Constraint::AddrOf(dst, MemRoot::Unknown));
            }
        }
        Callee::Fn(_) | Callee::Ptr(_) => {
            if pointerish(body, dst) {
                cs.push(Constraint::AddrOf(dst, MemRoot::Unknown));
            }
        }
    }
}

fn pointerish(body: &Body, local: Local) -> bool {
    let ty = &body.local_decl(local).ty;
    ty.is_pointer_like()
        || ty.is_guard()
        || matches!(ty, rstudy_mir::Ty::Named(_) | rstudy_mir::Ty::Arc(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{Mutability, Operand, Rvalue, Ty};

    #[test]
    fn address_of_and_copy() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        let q = b.local("q", Ty::mut_ptr(Ty::Int));
        b.storage_live(x);
        b.storage_live(p);
        b.storage_live(q);
        b.assign(p, Rvalue::AddrOf(Mutability::Mut, x.into()));
        b.assign(q, Rvalue::Use(Operand::copy(p)));
        b.ret();
        let pt = PointsTo::analyze(&b.finish());
        assert!(pt.targets(p).contains(&MemRoot::Local(x)));
        assert!(pt.targets(q).contains(&MemRoot::Local(x)));
        assert!(pt.may_alias(p, q));
    }

    #[test]
    fn heap_allocations_are_distinguished_by_site() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        let q = b.local("q", Ty::mut_ptr(Ty::Int));
        b.storage_live(p);
        b.storage_live(q);
        b.call_intrinsic_cont(Intrinsic::Alloc, vec![Operand::int(4)], p);
        b.call_intrinsic_cont(Intrinsic::Alloc, vec![Operand::int(4)], q);
        b.ret();
        let pt = PointsTo::analyze(&b.finish());
        assert_eq!(pt.targets(p).len(), 1);
        assert_eq!(pt.targets(q).len(), 1);
        assert!(!pt.may_alias(p, q), "distinct alloc sites do not alias");
    }

    #[test]
    fn guard_points_to_its_lock() {
        let mutex_ty = Ty::Mutex(Box::new(Ty::Int));
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let m = b.local("m", mutex_ty.clone());
        let r = b.local("r", Ty::shared_ref(mutex_ty));
        let g = b.local("g", Ty::Guard(Box::new(Ty::Int)));
        b.storage_live(m);
        b.storage_live(r);
        b.storage_live(g);
        b.assign(r, Rvalue::Ref(Mutability::Not, m.into()));
        b.call_intrinsic_cont(Intrinsic::MutexLock, vec![Operand::copy(r)], g);
        b.ret();
        let pt = PointsTo::analyze(&b.finish());
        assert!(
            pt.targets(g).contains(&MemRoot::Local(m)),
            "guard identity resolves to the mutex local: {:?}",
            pt.targets(g)
        );
    }

    #[test]
    fn argument_pointers_get_symbolic_pointees() {
        let mut b = BodyBuilder::new("f", 1, Ty::Unit);
        let a = b.arg("a", Ty::mut_ptr(Ty::Int));
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        b.storage_live(p);
        b.assign(p, Rvalue::Use(Operand::copy(a)));
        b.ret();
        let pt = PointsTo::analyze(&b.finish());
        assert!(pt.targets(p).contains(&MemRoot::ArgPointee(a)));
    }

    #[test]
    fn store_and_load_through_pointer() {
        // s = &x; *pp = s; t = *pp  ⇒ t may point to x.
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let s = b.local("s", Ty::mut_ptr(Ty::Int));
        let cell = b.local("cell", Ty::mut_ptr(Ty::Int));
        let pp = b.local("pp", Ty::mut_ptr(Ty::mut_ptr(Ty::Int)));
        let t = b.local("t", Ty::mut_ptr(Ty::Int));
        for l in [x, s, cell, pp, t] {
            b.storage_live(l);
        }
        b.assign(s, Rvalue::AddrOf(Mutability::Mut, x.into()));
        b.assign(pp, Rvalue::AddrOf(Mutability::Mut, cell.into()));
        b.assign(
            rstudy_mir::Place::from_local(pp).deref(),
            Rvalue::Use(Operand::copy(s)),
        );
        b.assign(
            t,
            Rvalue::Use(Operand::copy(rstudy_mir::Place::from_local(pp).deref())),
        );
        b.ret();
        let pt = PointsTo::analyze(&b.finish());
        assert!(
            pt.targets(t).contains(&MemRoot::Local(x)),
            "{:?}",
            pt.targets(t)
        );
    }

    #[test]
    fn unknown_results_from_opaque_calls() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        b.storage_live(p);
        b.call_intrinsic_cont(Intrinsic::ExternCall, vec![], p);
        b.ret();
        let pt = PointsTo::analyze(&b.finish());
        assert!(pt.targets(p).contains(&MemRoot::Unknown));
    }

    #[test]
    fn offset_stays_in_object() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let arr = b.local("arr", Ty::Array(Box::new(Ty::Int), 4));
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        let q = b.local("q", Ty::mut_ptr(Ty::Int));
        for l in [arr, p, q] {
            b.storage_live(l);
        }
        b.assign(p, Rvalue::AddrOf(Mutability::Mut, arr.into()));
        b.assign(
            q,
            Rvalue::BinaryOp(rstudy_mir::BinOp::Offset, Operand::copy(p), Operand::int(1)),
        );
        b.ret();
        let pt = PointsTo::analyze(&b.finish());
        assert!(pt.targets(q).contains(&MemRoot::Local(arr)));
    }
}
