//! Static analyses over [`rstudy_mir`] bodies.
//!
//! This crate hosts the analysis machinery the PLDI 2020 study's detectors
//! are built on:
//!
//! * a generic worklist [`dataflow`] engine (forward and backward),
//! * [`cfg`] utilities (predecessors, traversal orders) and [`dominators`],
//! * [`liveness`] (backward live variables) and [`storage`]
//!   (storage-liveness and maybe-initialized tracking — the facts rustc's
//!   `StorageLive`/`StorageDead` markers expose and the paper's use-after-free
//!   detector consumes),
//! * [`points_to`] (flow-insensitive Andersen-style, per function, with
//!   symbolic argument pointees for interprocedural resolution),
//! * [`callgraph`] over a whole [`rstudy_mir::Program`],
//! * [`locks`] (lock-guard live ranges, the double-lock detector's input).

#![warn(missing_docs)]
pub mod bitset;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod const_prop;
pub mod dataflow;
pub mod dominators;
pub mod heap;
pub mod liveness;
pub mod locks;
pub mod points_to;
pub mod reaching;
pub mod storage;

pub use bitset::BitSet;
pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use dataflow::{Analysis, Direction, Results};
pub use dominators::Dominators;
