//! Lock-guard lifetime analysis.
//!
//! Rust releases a lock when the guard returned by `lock()`/`read()`/
//! `write()` is dropped — at `StorageDead`, an explicit `drop`, or a move.
//! The paper identifies misjudging that implicit release point as the root
//! cause of most double-lock bugs (§6.1) and builds its double-lock detector
//! on exactly this analysis (§7.2): compute each guard's live range and
//! check whether the same lock is re-acquired inside it.

use rstudy_mir::visit::Location;
use rstudy_mir::{
    Body, Callee, Intrinsic, Local, Operand, Statement, StatementKind, Terminator, TerminatorKind,
};

use crate::bitset::BitSet;
use crate::dataflow::{self, Analysis, Direction, Results};

/// How a lock is acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AcquireKind {
    /// `mutex::lock` — exclusive.
    Mutex,
    /// `rwlock::read` — shared.
    Read,
    /// `rwlock::write` — exclusive.
    Write,
}

impl AcquireKind {
    /// Returns `true` if two acquisitions of this kind conflict with each
    /// other on the same lock (read/read does not deadlock; everything
    /// else does for a non-reentrant lock).
    pub fn conflicts_with(self, other: AcquireKind) -> bool {
        !(self == AcquireKind::Read && other == AcquireKind::Read)
    }
}

/// One lock acquisition site in a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquisition {
    /// Where the `lock()` call happens.
    pub location: Location,
    /// The guard local the call returns.
    pub guard: Local,
    /// The operand holding `&lock` (a reference to the lock object).
    pub lock_ref: Option<Local>,
    /// Mutex lock, rwlock read, or rwlock write.
    pub kind: AcquireKind,
}

/// Extracts every lock-acquisition call site from `body`.
pub fn lock_acquisitions(body: &Body) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for bb in body.block_indices() {
        let data = body.block(bb);
        let Some(term) = &data.terminator else {
            continue;
        };
        if let TerminatorKind::Call {
            func: Callee::Intrinsic(i),
            args,
            destination,
            ..
        } = &term.kind
        {
            let kind = match i {
                Intrinsic::MutexLock => AcquireKind::Mutex,
                Intrinsic::RwLockRead => AcquireKind::Read,
                Intrinsic::RwLockWrite => AcquireKind::Write,
                _ => continue,
            };
            let guard = destination.local;
            let lock_ref = args.first().and_then(Operand::place).map(|p| p.local);
            out.push(Acquisition {
                location: Location {
                    block: bb,
                    statement_index: data.statements.len(),
                },
                guard,
                lock_ref,
                kind,
            });
        }
    }
    out
}

/// Forward *may* analysis: bit set ⇒ the local currently holds a live lock
/// guard (the lock may still be held here).
///
/// A guard becomes held at its acquiring call and is released when it is
/// `StorageDead`-ed, dropped (`Drop` terminator or `mem::drop`), moved out,
/// overwritten, or consumed by `condvar::wait` (which releases the lock
/// while waiting and returns a fresh guard).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeldGuards;

impl HeldGuards {
    /// Solves the analysis for `body`.
    pub fn solve(body: &Body) -> Results<HeldGuards> {
        dataflow::solve(HeldGuards, body)
    }
}

impl Analysis for HeldGuards {
    type Domain = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, body: &Body) -> BitSet {
        BitSet::new(body.locals.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn apply_statement(&self, state: &mut BitSet, stmt: &Statement, _loc: Location) {
        match &stmt.kind {
            StatementKind::StorageDead(l) => {
                state.remove(l.index());
            }
            StatementKind::Assign(place, rv) => {
                // Moving the guard elsewhere transfers (not releases) the
                // lock; conservatively track the new holder as held too,
                // and stop tracking an overwritten guard local.
                for op in rv.operands() {
                    if let Operand::Move(p) = op {
                        if p.is_local() && state.contains(p.local.index()) {
                            state.remove(p.local.index());
                            if place.is_local() {
                                state.insert(place.local.index());
                            }
                        }
                    }
                }
                if place.is_local() && !rv.operands().iter().any(|o| o.is_move()) {
                    state.remove(place.local.index());
                }
            }
            _ => {}
        }
    }

    fn apply_terminator(&self, state: &mut BitSet, term: &Terminator, _loc: Location) {
        match &term.kind {
            TerminatorKind::Drop { place, .. } if place.is_local() => {
                state.remove(place.local.index());
            }
            TerminatorKind::Call {
                func,
                args,
                destination,
                ..
            } => {
                match func {
                    Callee::Intrinsic(Intrinsic::MemDrop) => {
                        if let Some(Operand::Copy(p) | Operand::Move(p)) = args.first() {
                            if p.is_local() {
                                state.remove(p.local.index());
                            }
                        }
                    }
                    Callee::Intrinsic(Intrinsic::CondvarWait) => {
                        // wait(cv, guard) releases the guard and returns a
                        // reacquired one into the destination.
                        if let Some(Operand::Copy(p) | Operand::Move(p)) = args.get(1) {
                            if p.is_local() {
                                state.remove(p.local.index());
                            }
                        }
                        if destination.is_local() {
                            state.insert(destination.local.index());
                        }
                        return;
                    }
                    Callee::Intrinsic(i) if i.acquires_lock() => {
                        if destination.is_local() {
                            state.insert(destination.local.index());
                        }
                        return;
                    }
                    _ => {}
                }
                // Moved-away guards stop being tracked under their old name.
                for a in args {
                    if let Operand::Move(p) = a {
                        if p.is_local() {
                            state.remove(p.local.index());
                        }
                    }
                }
                if destination.is_local() {
                    state.remove(destination.local.index());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{Mutability, Place, Rvalue, Ty};

    fn mutex_ty() -> Ty {
        Ty::Mutex(Box::new(Ty::Int))
    }

    /// Builds: m = mutex::new(0); r = &m; g = mutex::lock(r);
    /// Returns (builder, m, r, g) with the cursor after the lock call.
    fn locked_body() -> (BodyBuilder, Local, Local, Local) {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let m = b.local("m", mutex_ty());
        let r = b.local("r", Ty::shared_ref(mutex_ty()));
        let g = b.local("g", Ty::Guard(Box::new(Ty::Int)));
        b.storage_live(m);
        b.call_intrinsic_cont(Intrinsic::MutexNew, vec![Operand::int(0)], m);
        b.storage_live(r);
        b.assign(r, Rvalue::Ref(Mutability::Not, m.into()));
        b.storage_live(g);
        b.call_intrinsic_cont(Intrinsic::MutexLock, vec![Operand::copy(r)], g);
        (b, m, r, g)
    }

    #[test]
    fn acquisitions_are_extracted() {
        let (mut b, _m, r, g) = locked_body();
        b.ret();
        let body = b.finish();
        let acqs = lock_acquisitions(&body);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].guard, g);
        assert_eq!(acqs[0].lock_ref, Some(r));
        assert_eq!(acqs[0].kind, AcquireKind::Mutex);
    }

    #[test]
    fn guard_is_held_until_storage_dead() {
        let (mut b, _m, _r, g) = locked_body();
        b.nop(); // held here
        b.storage_dead(g);
        b.nop(); // released here
        b.ret();
        let body = b.finish();
        let r = HeldGuards::solve(&body);
        let bb = rstudy_mir::BasicBlock(2);
        let held_at = |i| {
            r.state_before(
                &body,
                Location {
                    block: bb,
                    statement_index: i,
                },
            )
            .contains(g.index())
        };
        assert!(held_at(0), "held right after lock()");
        assert!(held_at(1), "held before StorageDead");
        assert!(!held_at(2), "released after StorageDead");
    }

    #[test]
    fn mem_drop_releases_guard() {
        let (mut b, _m, _r, g) = locked_body();
        let unit = b.temp(Ty::Unit);
        b.storage_live(unit);
        b.call_intrinsic_cont(Intrinsic::MemDrop, vec![Operand::mov(g)], unit);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = HeldGuards::solve(&body);
        let after = r.state_before(
            &body,
            Location {
                block: rstudy_mir::BasicBlock(3),
                statement_index: 0,
            },
        );
        assert!(!after.contains(g.index()));
    }

    #[test]
    fn condvar_wait_releases_and_reacquires() {
        let (mut b, _m, _r, g) = locked_body();
        let cv = b.local("cv", Ty::Condvar);
        let cvr = b.local("cvr", Ty::shared_ref(Ty::Condvar));
        let g2 = b.local("g2", Ty::Guard(Box::new(Ty::Int)));
        b.storage_live(cv);
        b.call_intrinsic_cont(Intrinsic::CondvarNew, vec![], cv);
        b.storage_live(cvr);
        b.assign(cvr, Rvalue::Ref(Mutability::Not, cv.into()));
        b.storage_live(g2);
        b.call_intrinsic_cont(
            Intrinsic::CondvarWait,
            vec![Operand::copy(cvr), Operand::mov(g)],
            g2,
        );
        b.nop();
        b.ret();
        let body = b.finish();
        let r = HeldGuards::solve(&body);
        let last_bb = rstudy_mir::BasicBlock((body.blocks.len() - 1) as u32);
        let state = r.state_before(
            &body,
            Location {
                block: last_bb,
                statement_index: 0,
            },
        );
        assert!(!state.contains(g.index()), "old guard released by wait");
        assert!(state.contains(g2.index()), "wait returns a held guard");
    }

    #[test]
    fn moving_a_guard_transfers_holding() {
        let (mut b, _m, _r, g) = locked_body();
        let g2 = b.local("g2", Ty::Guard(Box::new(Ty::Int)));
        b.storage_live(g2);
        b.assign(g2, Rvalue::Use(Operand::mov(g)));
        b.nop();
        b.ret();
        let body = b.finish();
        let r = HeldGuards::solve(&body);
        let bb = rstudy_mir::BasicBlock(2);
        let state = r.state_before(
            &body,
            Location {
                block: bb,
                statement_index: 3,
            },
        );
        assert!(!state.contains(g.index()));
        assert!(state.contains(g2.index()));
    }

    #[test]
    fn branches_join_held_sets() {
        // Lock only on one arm; at the join the guard *may* be held.
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let m = b.local("m", mutex_ty());
        let r = b.local("r", Ty::shared_ref(mutex_ty()));
        let g = b.local("g", Ty::Guard(Box::new(Ty::Int)));
        b.storage_live(m);
        b.call_intrinsic_cont(Intrinsic::MutexNew, vec![Operand::int(0)], m);
        b.storage_live(r);
        b.assign(r, Rvalue::Ref(Mutability::Not, m.into()));
        b.storage_live(g);
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.call(
            Callee::Intrinsic(Intrinsic::MutexLock),
            vec![Operand::copy(r)],
            Place::from_local(g),
            Some(join),
        );
        b.switch_to(e);
        b.goto(join);
        b.switch_to(join);
        b.nop();
        b.ret();
        let body = b.finish();
        let res = HeldGuards::solve(&body);
        assert!(res
            .state_before(
                &body,
                Location {
                    block: join,
                    statement_index: 0
                }
            )
            .contains(g.index()));
    }
}
