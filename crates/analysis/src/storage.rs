//! Storage- and initialization-tracking dataflow analyses.
//!
//! These mirror the facts the paper's use-after-free detector extracts from
//! MIR: a local's storage window (`StorageLive`..`StorageDead`) and whether
//! its value may have been invalidated (dropped, moved out, or never
//! initialized).

use rstudy_mir::visit::Location;
use rstudy_mir::{
    Body, Callee, Intrinsic, Operand, Statement, StatementKind, Terminator, TerminatorKind,
};

use crate::bitset::BitSet;
use crate::dataflow::{self, Analysis, Direction, Results};

/// Forward *may* analysis: bit set ⇒ the local's storage may be dead here.
///
/// Before its `StorageLive` a local has no storage, so all non-argument
/// locals start dead at the function entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaybeStorageDead;

impl MaybeStorageDead {
    /// Solves the analysis for `body`.
    pub fn solve(body: &Body) -> Results<MaybeStorageDead> {
        dataflow::solve(MaybeStorageDead, body)
    }
}

impl Analysis for MaybeStorageDead {
    type Domain = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, body: &Body) -> BitSet {
        BitSet::new(body.locals.len())
    }

    fn initialize(&self, body: &Body, state: &mut BitSet) {
        for l in body.local_indices() {
            if l != rstudy_mir::Local::RETURN && !body.is_arg(l) {
                state.insert(l.index());
            }
        }
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn apply_statement(&self, state: &mut BitSet, stmt: &Statement, _loc: Location) {
        match &stmt.kind {
            StatementKind::StorageLive(l) => {
                state.remove(l.index());
            }
            StatementKind::StorageDead(l) => {
                state.insert(l.index());
            }
            _ => {}
        }
    }

    fn apply_terminator(&self, _state: &mut BitSet, _term: &Terminator, _loc: Location) {}
}

/// Forward *may* analysis: bit set ⇒ the local's **value** may be invalid —
/// uninitialized, moved out, explicitly dropped, or storage-dead.
///
/// This is the core fact behind use-after-free, double-free, and
/// invalid-free reasoning: dereferencing a pointer whose pointee is in this
/// set, or dropping a value in this set, is suspicious.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaybeInvalid;

impl MaybeInvalid {
    /// Solves the analysis for `body`.
    pub fn solve(body: &Body) -> Results<MaybeInvalid> {
        dataflow::solve(MaybeInvalid, body)
    }
}

fn invalidate_moves(state: &mut BitSet, op: &Operand) {
    if let Operand::Move(place) = op {
        if place.is_local() {
            state.insert(place.local.index());
        }
    }
}

impl Analysis for MaybeInvalid {
    type Domain = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, body: &Body) -> BitSet {
        BitSet::new(body.locals.len())
    }

    fn initialize(&self, body: &Body, state: &mut BitSet) {
        // Arguments arrive initialized; everything else starts invalid.
        for l in body.local_indices() {
            if !body.is_arg(l) {
                state.insert(l.index());
            }
        }
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn apply_statement(&self, state: &mut BitSet, stmt: &Statement, _loc: Location) {
        match &stmt.kind {
            StatementKind::Assign(place, rv) => {
                for op in rv.operands() {
                    invalidate_moves(state, op);
                }
                if place.is_local() {
                    state.remove(place.local.index());
                }
            }
            StatementKind::StorageDead(l) => {
                state.insert(l.index());
            }
            StatementKind::StorageLive(_) | StatementKind::Nop => {}
        }
    }

    fn apply_terminator(&self, state: &mut BitSet, term: &Terminator, _loc: Location) {
        match &term.kind {
            TerminatorKind::Drop { place, .. } if place.is_local() => {
                state.insert(place.local.index());
            }
            TerminatorKind::Call {
                func,
                args,
                destination,
                ..
            } => {
                for a in args {
                    invalidate_moves(state, a);
                }
                // `mem::drop(x)` and `mem::forget(x)` consume by value even
                // when written with a copy operand.
                if let Callee::Intrinsic(Intrinsic::MemDrop | Intrinsic::MemForget) = func {
                    if let Some(Operand::Copy(p) | Operand::Move(p)) = args.first() {
                        if p.is_local() {
                            state.insert(p.local.index());
                        }
                    }
                }
                if destination.is_local() {
                    state.remove(destination.local.index());
                }
            }
            _ => {}
        }
    }
}

/// Forward *may* analysis: bit set ⇒ the local's value may have been
/// **freed** — explicitly dropped, moved out, consumed by `mem::drop`, or
/// storage-dead. Unlike [`MaybeInvalid`], never-initialized locals are *not*
/// in the set, so this is the right input for use-after-free reasoning
/// (reading an uninitialized local is a different bug class).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaybeFreed;

impl MaybeFreed {
    /// Solves the analysis for `body`.
    pub fn solve(body: &Body) -> Results<MaybeFreed> {
        dataflow::solve(MaybeFreed, body)
    }
}

impl Analysis for MaybeFreed {
    type Domain = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, body: &Body) -> BitSet {
        BitSet::new(body.locals.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn apply_statement(&self, state: &mut BitSet, stmt: &Statement, _loc: Location) {
        match &stmt.kind {
            StatementKind::Assign(place, rv) => {
                for op in rv.operands() {
                    invalidate_moves(state, op);
                }
                if place.is_local() {
                    state.remove(place.local.index());
                }
            }
            StatementKind::StorageDead(l) => {
                state.insert(l.index());
            }
            StatementKind::StorageLive(_) | StatementKind::Nop => {}
        }
    }

    fn apply_terminator(&self, state: &mut BitSet, term: &Terminator, _loc: Location) {
        match &term.kind {
            TerminatorKind::Drop { place, .. } if place.is_local() => {
                state.insert(place.local.index());
            }
            TerminatorKind::Call {
                func,
                args,
                destination,
                ..
            } => {
                for a in args {
                    invalidate_moves(state, a);
                }
                if let Callee::Intrinsic(Intrinsic::MemDrop) = func {
                    if let Some(Operand::Copy(p) | Operand::Move(p)) = args.first() {
                        if p.is_local() {
                            state.insert(p.local.index());
                        }
                    }
                }
                if destination.is_local() {
                    state.remove(destination.local.index());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::visit::Location;
    use rstudy_mir::{BasicBlock, Operand, Rvalue, Ty};

    fn loc(block: u32, i: usize) -> Location {
        Location {
            block: BasicBlock(block),
            statement_index: i,
        }
    }

    #[test]
    fn storage_window_tracks_live_and_dead() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.nop(); // 0: before StorageLive
        b.storage_live(x); // 1
        b.nop(); // 2: inside window
        b.storage_dead(x); // 3
        b.nop(); // 4: after StorageDead
        b.ret();
        let body = b.finish();
        let r = MaybeStorageDead::solve(&body);
        assert!(r.state_before(&body, loc(0, 0)).contains(x.index()));
        assert!(!r.state_before(&body, loc(0, 2)).contains(x.index()));
        assert!(r.state_before(&body, loc(0, 4)).contains(x.index()));
    }

    #[test]
    fn arguments_start_with_storage() {
        let mut b = BodyBuilder::new("f", 1, Ty::Unit);
        let a = b.arg("a", Ty::Int);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = MaybeStorageDead::solve(&body);
        assert!(!r.state_before(&body, loc(0, 0)).contains(a.index()));
    }

    #[test]
    fn assignment_validates_and_move_invalidates() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Named("S".into()));
        let y = b.local("y", Ty::Named("S".into()));
        b.storage_live(x); // 0
        b.storage_live(y); // 1
        b.assign(x, Rvalue::Use(Operand::int(1))); // 2
        b.assign(y, Rvalue::Use(Operand::mov(x))); // 3: moves x out
        b.nop(); // 4
        b.ret();
        let body = b.finish();
        let r = MaybeInvalid::solve(&body);
        assert!(r.state_before(&body, loc(0, 2)).contains(x.index()));
        assert!(!r.state_before(&body, loc(0, 3)).contains(x.index()));
        let after_move = r.state_before(&body, loc(0, 4));
        assert!(after_move.contains(x.index()), "moved-out x is invalid");
        assert!(!after_move.contains(y.index()));
    }

    #[test]
    fn drop_terminator_invalidates() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Named("S".into()));
        b.storage_live(x);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.drop_cont(x);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = MaybeInvalid::solve(&body);
        assert!(r.state_before(&body, loc(1, 0)).contains(x.index()));
    }

    #[test]
    fn mem_drop_call_invalidates_argument() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let g = b.local("g", Ty::Guard(Box::new(Ty::Int)));
        let unit = b.temp(Ty::Unit);
        b.storage_live(g);
        b.assign(g, Rvalue::Use(Operand::int(0)));
        b.storage_live(unit);
        b.call_intrinsic_cont(rstudy_mir::Intrinsic::MemDrop, vec![Operand::mov(g)], unit);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = MaybeInvalid::solve(&body);
        assert!(r.state_before(&body, loc(1, 0)).contains(g.index()));
    }

    #[test]
    fn maybe_freed_excludes_uninitialized() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.storage_live(x); // 0
        b.nop(); // 1: x uninitialized but NOT freed
        b.assign(x, Rvalue::Use(Operand::int(1))); // 2
        b.storage_dead(x); // 3
        b.nop(); // 4: x freed
        b.ret();
        let body = b.finish();
        let r = MaybeFreed::solve(&body);
        assert!(!r.state_before(&body, loc(0, 1)).contains(x.index()));
        assert!(r.state_before(&body, loc(0, 4)).contains(x.index()));
    }

    #[test]
    fn branches_may_invalidate() {
        // One arm drops x: after the join x is *maybe* invalid.
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Named("S".into()));
        b.storage_live(x);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.drop_place(x, join);
        b.switch_to(e);
        b.goto(join);
        b.switch_to(join);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = MaybeInvalid::solve(&body);
        assert!(r
            .state_before(
                &body,
                Location {
                    block: join,
                    statement_index: 0
                }
            )
            .contains(x.index()));
    }
}
