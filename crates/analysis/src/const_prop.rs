//! Simple intraprocedural constant propagation.
//!
//! The study found that 17 of 21 buffer-overflow bugs share one shape: the
//! index is *computed in safe code* and the out-of-bounds access happens
//! *later in unsafe code*. Propagating integer constants through the body is
//! what lets the buffer-overflow detector connect the two sites.

use std::collections::BTreeMap;

use rstudy_mir::visit::Location;
use rstudy_mir::{
    BinOp, Body, Const, Local, Operand, Rvalue, Statement, StatementKind, Terminator,
    TerminatorKind, UnOp,
};

use crate::dataflow::{self, Analysis, Direction, Results};

/// The flat constant lattice: unknown (⊥ / ⊤ collapsed) or a known value.
///
/// Absent from the map ⇒ unknown. The join of two different constants is
/// unknown, so the map only keeps locals that are the *same* constant on
/// every path.
pub type ConstMap = BTreeMap<Local, i64>;

/// The constant-propagation dataflow problem.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstProp;

impl ConstProp {
    /// Solves constant propagation for `body`.
    pub fn solve(body: &Body) -> Results<ConstProp> {
        dataflow::solve(ConstProp, body)
    }
}

/// Evaluates an operand under a constant environment.
pub fn eval_operand(state: &ConstMap, op: &Operand) -> Option<i64> {
    match op {
        Operand::Const(Const::Int(v)) => Some(*v),
        Operand::Const(Const::Bool(b)) => Some(i64::from(*b)),
        Operand::Copy(p) | Operand::Move(p) if p.is_local() => state.get(&p.local).copied(),
        _ => None,
    }
}

fn eval_rvalue(state: &ConstMap, rv: &Rvalue) -> Option<i64> {
    match rv {
        Rvalue::Use(op) | Rvalue::Cast(op, _) => eval_operand(state, op),
        Rvalue::UnaryOp(UnOp::Neg, op) => eval_operand(state, op).map(|v| -v),
        Rvalue::UnaryOp(UnOp::Not, op) => eval_operand(state, op).map(|v| i64::from(v == 0)),
        Rvalue::BinaryOp(op, a, b) => {
            let (a, b) = (eval_operand(state, a)?, eval_operand(state, b)?);
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::Eq => i64::from(a == b),
                BinOp::Ne => i64::from(a != b),
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::And => i64::from(a != 0 && b != 0),
                BinOp::Or => i64::from(a != 0 || b != 0),
                BinOp::Offset => return None,
            })
        }
        _ => None,
    }
}

impl Analysis for ConstProp {
    /// `None` = unreached (the must-analysis top); `Some(map)` = the locals
    /// known to hold the same constant on every path reaching this point.
    type Domain = Option<ConstMap>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _body: &Body) -> Option<ConstMap> {
        None
    }

    fn initialize(&self, _body: &Body, state: &mut Option<ConstMap>) {
        *state = Some(ConstMap::new());
    }

    fn join(&self, into: &mut Option<ConstMap>, from: &Option<ConstMap>) -> bool {
        let Some(from) = from else { return false };
        match into {
            None => {
                *into = Some(from.clone());
                true
            }
            Some(map) => {
                let before = map.len();
                map.retain(|l, v| from.get(l) == Some(v));
                map.len() != before
            }
        }
    }

    fn apply_statement(&self, state: &mut Option<ConstMap>, stmt: &Statement, _loc: Location) {
        let Some(map) = state else { return };
        if let StatementKind::Assign(place, rv) = &stmt.kind {
            if place.is_local() {
                match eval_rvalue(map, rv) {
                    Some(v) => {
                        map.insert(place.local, v);
                    }
                    None => {
                        map.remove(&place.local);
                    }
                }
            }
        }
    }

    fn apply_terminator(&self, state: &mut Option<ConstMap>, term: &Terminator, _loc: Location) {
        let Some(map) = state else { return };
        if let TerminatorKind::Call { destination, .. } = &term.kind {
            if destination.is_local() {
                map.remove(&destination.local);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{BasicBlock, Ty};

    fn loc(block: u32, i: usize) -> Location {
        Location {
            block: BasicBlock(block),
            statement_index: i,
        }
    }

    #[test]
    fn straightline_arithmetic_folds() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let y = b.local("y", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(5)));
        b.assign(
            y,
            Rvalue::BinaryOp(BinOp::Mul, Operand::copy(x), Operand::int(3)),
        );
        b.nop();
        b.ret();
        let body = b.finish();
        let r = ConstProp::solve(&body);
        let state = r.state_before(&body, loc(0, 2)).expect("reachable");
        assert_eq!(state.get(&x), Some(&5));
        assert_eq!(state.get(&y), Some(&15));
    }

    #[test]
    fn disagreeing_branches_lose_the_constant() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.goto(join);
        b.switch_to(e);
        b.assign(x, Rvalue::Use(Operand::int(2)));
        b.goto(join);
        b.switch_to(join);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = ConstProp::solve(&body);
        let state = r
            .state_before(
                &body,
                Location {
                    block: join,
                    statement_index: 0,
                },
            )
            .expect("reachable");
        assert_eq!(state.get(&x), None);
    }

    #[test]
    fn agreeing_branches_keep_the_constant() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(7)));
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.goto(join);
        b.switch_to(e);
        b.goto(join);
        b.switch_to(join);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = ConstProp::solve(&body);
        let state = r
            .state_before(
                &body,
                Location {
                    block: join,
                    statement_index: 0,
                },
            )
            .expect("reachable");
        assert_eq!(state.get(&x), Some(&7));
    }

    #[test]
    fn calls_clobber_destinations() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.call_intrinsic_cont(rstudy_mir::Intrinsic::AtomicNew, vec![Operand::int(0)], x);
        b.nop();
        b.ret();
        let body = b.finish();
        let r = ConstProp::solve(&body);
        let state = r.state_before(&body, loc(1, 0)).expect("reachable");
        assert_eq!(state.get(&x), None);
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.assign(
            x,
            Rvalue::BinaryOp(BinOp::Div, Operand::int(1), Operand::int(0)),
        );
        b.nop();
        b.ret();
        let body = b.finish();
        let r = ConstProp::solve(&body);
        assert_eq!(
            r.state_before(&body, loc(0, 1)).expect("reachable").get(&x),
            None
        );
    }
}
