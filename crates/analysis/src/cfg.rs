//! Control-flow-graph utilities: predecessor maps and traversal orders.

use rstudy_mir::{BasicBlock, Body};

/// Precomputed CFG edges for a body.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BasicBlock>>,
    succs: Vec<Vec<BasicBlock>>,
}

impl Cfg {
    /// Builds predecessor/successor maps from a body's terminators.
    pub fn new(body: &Body) -> Cfg {
        let n = body.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for bb in body.block_indices() {
            if let Some(term) = &body.block(bb).terminator {
                for succ in term.kind.successors() {
                    succs[bb.index()].push(succ);
                    preds[succ.index()].push(bb);
                }
            }
        }
        Cfg { preds, succs }
    }

    /// Blocks jumping to `bb`.
    pub fn predecessors(&self, bb: BasicBlock) -> &[BasicBlock] {
        &self.preds[bb.index()]
    }

    /// Blocks `bb` jumps to.
    pub fn successors(&self, bb: BasicBlock) -> &[BasicBlock] {
        &self.succs[bb.index()]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` if the body has no blocks.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Post-order over blocks reachable from the entry.
    pub fn postorder(&self) -> Vec<BasicBlock> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        if n == 0 {
            return order;
        }
        // Iterative DFS carrying an explicit successor cursor.
        let mut stack: Vec<(BasicBlock, usize)> = vec![(BasicBlock::ENTRY, 0)];
        visited[0] = true;
        while let Some(&mut (bb, ref mut cursor)) = stack.last_mut() {
            let succs = self.successors(bb);
            if *cursor < succs.len() {
                let next = succs[*cursor];
                *cursor += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(bb);
                stack.pop();
            }
        }
        order
    }

    /// Reverse post-order (the canonical forward-dataflow iteration order).
    pub fn reverse_postorder(&self) -> Vec<BasicBlock> {
        let mut po = self.postorder();
        po.reverse();
        po
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<BasicBlock> {
        let mut r = self.postorder();
        r.sort_by_key(|b| b.index());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{Operand, Ty};

    /// Diamond: bb0 -> (bb1 | bb2) -> bb3.
    fn diamond() -> Body {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.goto(join);
        b.switch_to(e);
        b.goto(join);
        b.switch_to(join);
        b.ret();
        b.finish()
    }

    #[test]
    fn predecessors_and_successors() {
        let body = diamond();
        let cfg = Cfg::new(&body);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.successors(BasicBlock(0)).len(), 2);
        assert_eq!(cfg.predecessors(BasicBlock(3)).len(), 2);
        assert_eq!(cfg.predecessors(BasicBlock(0)).len(), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_ends_at_exit() {
        let body = diamond();
        let cfg = Cfg::new(&body);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.first(), Some(&BasicBlock(0)));
        assert_eq!(rpo.last(), Some(&BasicBlock(3)));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn unreachable_blocks_are_skipped() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.ret();
        let dead = b.new_block();
        b.switch_to(dead);
        b.ret();
        let body = b.finish();
        let cfg = Cfg::new(&body);
        assert_eq!(cfg.reachable(), vec![BasicBlock(0)]);
    }

    #[test]
    fn postorder_handles_loops() {
        // bb0 -> bb1 -> bb2 -> bb1 (back edge), bb2 -> bb3
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let header = b.new_block();
        b.goto(header);
        b.switch_to(header);
        let body_bb = b.new_block();
        b.goto(body_bb);
        b.switch_to(body_bb);
        let exit = b.new_block();
        b.switch_int(Operand::int(0), vec![(0, header)], exit);
        b.switch_to(exit);
        b.ret();
        let body = b.finish();
        let cfg = Cfg::new(&body);
        let po = cfg.postorder();
        assert_eq!(po.len(), 4);
        // Entry is last in post-order.
        assert_eq!(po.last(), Some(&BasicBlock(0)));
    }
}
