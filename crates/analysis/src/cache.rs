//! A shared, thread-safe memoization layer over the per-body analyses.
//!
//! Every detector in the suite needs some mix of storage liveness,
//! maybe-freed/maybe-invalid facts, points-to sets, lock-guard ranges and
//! the whole-program call graph. Run standalone, each detector recomputes
//! those from scratch; run as a suite that is up to tenfold duplicated
//! work. An [`AnalysisCache`] computes each fact at most once per body and
//! hands out shared references, using [`OnceLock`] slots so concurrent
//! workers race benignly: the first caller computes, everyone else waits
//! and reads.
//!
//! The cache keeps hit/miss tallies and flushes them to the
//! `analysis.cache.hits` / `analysis.cache.misses` telemetry counters when
//! dropped, so a `--profile` run shows how much recomputation was avoided.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use rstudy_mir::{Body, Program};

use crate::callgraph::CallGraph;
use crate::dataflow::Results;
use crate::heap::{HeapModel, HeapState};
use crate::locks::{lock_acquisitions, Acquisition, HeldGuards};
use crate::points_to::PointsTo;
use crate::storage::{MaybeFreed, MaybeInvalid, MaybeStorageDead};

/// Lazily-computed facts for one function body.
#[derive(Default)]
struct BodyFacts {
    points_to: OnceLock<Arc<PointsTo>>,
    storage_dead: OnceLock<Results<MaybeStorageDead>>,
    maybe_freed: OnceLock<Results<MaybeFreed>>,
    maybe_invalid: OnceLock<Results<MaybeInvalid>>,
    held_guards: OnceLock<Results<HeldGuards>>,
    acquisitions: OnceLock<Vec<Acquisition>>,
    heap_model: OnceLock<Arc<HeapModel>>,
    heap_state: OnceLock<Results<HeapState>>,
}

/// Memoized per-body and whole-program analysis results for one [`Program`].
///
/// All accessors take `&self` and are safe to call from many threads at
/// once; each underlying analysis runs at most once per body.
pub struct AnalysisCache<'p> {
    program: &'p Program,
    bodies: BTreeMap<&'p str, BodyFacts>,
    call_graph: OnceLock<CallGraph>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'p> AnalysisCache<'p> {
    /// Creates an empty cache over `program`; nothing is computed up front.
    pub fn new(program: &'p Program) -> AnalysisCache<'p> {
        AnalysisCache {
            program,
            bodies: program
                .iter()
                .map(|(name, _)| (name, BodyFacts::default()))
                .collect(),
            call_graph: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The program this cache covers.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Times a cached fact was served without recomputation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Times a fact had to be computed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Tallies a hit on behalf of a memoization layer built on top of this
    /// cache (e.g. a detector-side context memoizing derived summaries).
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies a miss on behalf of a memoization layer built on top of this
    /// cache.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn facts(&self, function: &str) -> (&BodyFacts, &'p Body) {
        let facts = self
            .bodies
            .get(function)
            .unwrap_or_else(|| panic!("analysis cache: unknown function `{function}`"));
        let body = self
            .program
            .function(function)
            .expect("cached function exists in the program");
        (facts, body)
    }

    /// Serves `slot`, computing it via `init` on first access, and tallies
    /// the hit/miss. Under contention `get_or_init` may block while another
    /// thread computes; that closing still counts as a hit here because no
    /// duplicate work ran on this thread.
    fn memo<'a, T>(&self, slot: &'a OnceLock<T>, init: impl FnOnce() -> T) -> &'a T {
        if let Some(v) = slot.get() {
            self.note_hit();
            return v;
        }
        let mut computed = false;
        let v = slot.get_or_init(|| {
            computed = true;
            init()
        });
        if computed {
            self.note_miss();
        } else {
            self.note_hit();
        }
        v
    }

    /// Andersen-style points-to sets for `function`.
    pub fn points_to(&self, function: &str) -> Arc<PointsTo> {
        let (facts, body) = self.facts(function);
        Arc::clone(self.memo(&facts.points_to, || Arc::new(PointsTo::analyze(body))))
    }

    /// Storage-liveness (maybe-storage-dead) facts for `function`.
    pub fn storage_dead(&self, function: &str) -> &Results<MaybeStorageDead> {
        let (facts, body) = self.facts(function);
        self.memo(&facts.storage_dead, || MaybeStorageDead::solve(body))
    }

    /// Maybe-freed facts for `function`.
    pub fn maybe_freed(&self, function: &str) -> &Results<MaybeFreed> {
        let (facts, body) = self.facts(function);
        self.memo(&facts.maybe_freed, || MaybeFreed::solve(body))
    }

    /// Maybe-invalidated facts for `function`.
    pub fn maybe_invalid(&self, function: &str) -> &Results<MaybeInvalid> {
        let (facts, body) = self.facts(function);
        self.memo(&facts.maybe_invalid, || MaybeInvalid::solve(body))
    }

    /// Lock-guard live ranges for `function`.
    pub fn held_guards(&self, function: &str) -> &Results<HeldGuards> {
        let (facts, body) = self.facts(function);
        self.memo(&facts.held_guards, || HeldGuards::solve(body))
    }

    /// Lock acquisition sites of `function`, in body order.
    pub fn acquisitions(&self, function: &str) -> &[Acquisition] {
        let (facts, body) = self.facts(function);
        self.memo(&facts.acquisitions, || lock_acquisitions(body))
            .as_slice()
    }

    /// The allocation-site model for `function`.
    pub fn heap_model(&self, function: &str) -> Arc<HeapModel> {
        let (facts, body) = self.facts(function);
        Arc::clone(self.memo(&facts.heap_model, || Arc::new(HeapModel::collect(body))))
    }

    /// Heap freed/written facts for `function` (built on the cached heap
    /// model and points-to sets).
    pub fn heap_state(&self, function: &str) -> &Results<HeapState> {
        let (facts, body) = self.facts(function);
        self.memo(&facts.heap_state, || {
            HeapState::new(self.heap_model(function), self.points_to(function)).solve(body)
        })
    }

    /// The whole-program call graph.
    pub fn call_graph(&self) -> &CallGraph {
        self.memo(&self.call_graph, || CallGraph::build(self.program))
    }
}

impl Drop for AnalysisCache<'_> {
    fn drop(&mut self) {
        rstudy_telemetry::counter("analysis.cache.hits", *self.hits.get_mut());
        rstudy_telemetry::counter("analysis.cache.misses", *self.misses.get_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::Ty;

    fn two_function_program() -> Program {
        let mut program = Program::new();
        for name in ["f", "g"] {
            let mut b = BodyBuilder::new(name, 0, Ty::Unit);
            let x = b.local("x", Ty::Int);
            b.storage_live(x);
            b.assign(
                rstudy_mir::Place::from_local(x),
                rstudy_mir::Rvalue::Use(rstudy_mir::Operand::int(1)),
            );
            b.ret();
            program.insert(b.finish());
        }
        program
    }

    #[test]
    fn repeated_lookups_hit_the_cache() {
        let program = two_function_program();
        let cache = AnalysisCache::new(&program);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        let first = cache.points_to("f");
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.points_to("f");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&first, &second));
        // A different body is a separate slot.
        cache.points_to("g");
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn cached_results_match_fresh_computation() {
        let program = two_function_program();
        let cache = AnalysisCache::new(&program);
        for (name, body) in program.iter() {
            assert_eq!(*cache.points_to(name), PointsTo::analyze(body));
            assert_eq!(
                cache.storage_dead(name).boundary,
                MaybeStorageDead::solve(body).boundary
            );
            assert_eq!(
                cache.held_guards(name).boundary,
                HeldGuards::solve(body).boundary
            );
        }
    }

    #[test]
    fn call_graph_is_computed_once() {
        let program = two_function_program();
        let cache = AnalysisCache::new(&program);
        let a = cache.call_graph() as *const CallGraph;
        let b = cache.call_graph() as *const CallGraph;
        assert_eq!(a, b);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn concurrent_access_computes_each_fact_once() {
        let program = two_function_program();
        let cache = AnalysisCache::new(&program);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (name, _) in program.iter() {
                        cache.points_to(name);
                        cache.heap_state(name);
                    }
                });
            }
        });
        // 4 threads × 2 bodies × (points_to + heap_model + points_to-inside
        // -heap_state + heap_state) lookups; every fact computed at most once.
        assert!(cache.misses() <= 8, "misses = {}", cache.misses());
        assert!(cache.hits() >= 8, "hits = {}", cache.hits());
    }
}
