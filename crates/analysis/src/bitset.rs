//! A dense, fixed-capacity bit set used as the domain of most dataflow
//! analyses (one bit per [`rstudy_mir::Local`] or block).

use std::fmt;

/// A fixed-size set of small indices backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// A set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> BitSet {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// The maximum number of elements this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`, returning `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Removes `i`, returning `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        self.words[w] != old
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        (self.words[w] >> b) & 1 == 1
    }

    /// Unions `other` into `self`, returning `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Intersects `other` into `self`, returning `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= b;
            changed |= *a != old;
        }
        changed
    }

    /// Removes every element of `other` from `self`.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the present indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.capacity).filter(move |&i| self.contains(i))
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports no change");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        b.insert(7);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn intersect_and_subtract() {
        let mut a = BitSet::full(8);
        let mut b = BitSet::new(8);
        b.insert(1);
        b.insert(2);
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 70);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(100));
    }

    #[test]
    fn debug_formats_as_set() {
        let mut s = BitSet::new(8);
        s.insert(2);
        s.insert(5);
        assert_eq!(format!("{s:?}"), "{2, 5}");
    }
}
