//! Reaching definitions.
//!
//! A *definition* is a program point that writes a bare local (an
//! assignment or a call destination). The analysis computes, for every
//! point, which definitions may reach it — the classic forward may-problem,
//! useful for def-use chains (e.g. finding the "index computed in safe
//! code" site that feeds an unsafe access, the paper's §5.1 pattern).

use rstudy_mir::visit::Location;
use rstudy_mir::{Body, Local, Statement, StatementKind, Terminator, TerminatorKind};

use crate::bitset::BitSet;
use crate::dataflow::{self, Analysis, Direction, Results};

/// All definition sites of a body, densely indexed.
#[derive(Debug, Clone, Default)]
pub struct Definitions {
    /// `(defined local, location)` per definition, in discovery order.
    sites: Vec<(Local, Location)>,
}

impl Definitions {
    /// Collects every definition in `body`.
    pub fn collect(body: &Body) -> Definitions {
        let mut sites = Vec::new();
        for bb in body.block_indices() {
            let data = body.block(bb);
            for (i, stmt) in data.statements.iter().enumerate() {
                if let StatementKind::Assign(place, _) = &stmt.kind {
                    if place.is_local() {
                        sites.push((
                            place.local,
                            Location {
                                block: bb,
                                statement_index: i,
                            },
                        ));
                    }
                }
            }
            if let Some(term) = &data.terminator {
                if let TerminatorKind::Call { destination, .. } = &term.kind {
                    if destination.is_local() {
                        sites.push((
                            destination.local,
                            Location {
                                block: bb,
                                statement_index: data.statements.len(),
                            },
                        ));
                    }
                }
            }
        }
        Definitions { sites }
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` if the body defines nothing.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The `(local, location)` of definition `i`.
    pub fn site(&self, i: usize) -> (Local, Location) {
        self.sites[i]
    }

    /// The dense index of the definition at `loc`, if one exists there.
    pub fn index_at(&self, loc: Location) -> Option<usize> {
        self.sites.iter().position(|&(_, l)| l == loc)
    }

    /// Indices of every definition of `local`.
    pub fn of_local(&self, local: Local) -> Vec<usize> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, (l, _))| *l == local)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The reaching-definitions dataflow problem.
#[derive(Debug, Clone)]
pub struct ReachingDefs<'a> {
    defs: &'a Definitions,
}

impl<'a> ReachingDefs<'a> {
    /// Creates the analysis over precollected definitions.
    pub fn new(defs: &'a Definitions) -> ReachingDefs<'a> {
        ReachingDefs { defs }
    }

    /// Solves the analysis.
    pub fn solve(self, body: &Body) -> Results<ReachingDefs<'a>> {
        rstudy_telemetry::record("analysis.reaching-defs.bitset_bits", self.defs.len() as u64);
        dataflow::solve(self, body)
    }

    fn kill_and_gen(&self, state: &mut BitSet, defined: Local, at: Location) {
        // A definition of `l` kills every other definition of `l`.
        for i in self.defs.of_local(defined) {
            state.remove(i);
        }
        if let Some(i) = self.defs.index_at(at) {
            state.insert(i);
        }
    }
}

impl Analysis for ReachingDefs<'_> {
    type Domain = BitSet;

    fn name(&self) -> &'static str {
        "reaching-defs"
    }

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _body: &Body) -> BitSet {
        BitSet::new(self.defs.len())
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn apply_statement(&self, state: &mut BitSet, stmt: &Statement, loc: Location) {
        if let StatementKind::Assign(place, _) = &stmt.kind {
            if place.is_local() {
                self.kill_and_gen(state, place.local, loc);
            }
        }
    }

    fn apply_terminator(&self, state: &mut BitSet, term: &Terminator, loc: Location) {
        if let TerminatorKind::Call { destination, .. } = &term.kind {
            if destination.is_local() {
                self.kill_and_gen(state, destination.local, loc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{BasicBlock, Operand, Rvalue, Ty};

    #[test]
    fn later_definition_kills_earlier_one() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(1))); // def 0
        b.assign(x, Rvalue::Use(Operand::int(2))); // def 1
        b.nop();
        b.ret();
        let body = b.finish();
        let defs = Definitions::collect(&body);
        assert_eq!(defs.len(), 2);
        let results = ReachingDefs::new(&defs).solve(&body);
        let at_nop = results.state_before(
            &body,
            Location {
                block: BasicBlock(0),
                statement_index: 2,
            },
        );
        assert!(!at_nop.contains(0), "first def killed");
        assert!(at_nop.contains(1));
    }

    #[test]
    fn branch_definitions_merge_at_join() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.assign(x, Rvalue::Use(Operand::int(1))); // def 0
        b.goto(join);
        b.switch_to(e);
        b.assign(x, Rvalue::Use(Operand::int(2))); // def 1
        b.goto(join);
        b.switch_to(join);
        b.nop();
        b.ret();
        let body = b.finish();
        let defs = Definitions::collect(&body);
        let results = ReachingDefs::new(&defs).solve(&body);
        let at_join = results.state_before(
            &body,
            Location {
                block: join,
                statement_index: 0,
            },
        );
        assert!(at_join.contains(0) && at_join.contains(1), "{at_join:?}");
    }

    #[test]
    fn call_destinations_are_definitions() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.storage_live(x);
        b.call_intrinsic_cont(rstudy_mir::Intrinsic::AtomicNew, vec![Operand::int(0)], x);
        b.ret();
        let body = b.finish();
        let defs = Definitions::collect(&body);
        assert_eq!(defs.len(), 1);
        assert_eq!(defs.site(0).0, x);
        let results = ReachingDefs::new(&defs).solve(&body);
        let in_bb1 = results.boundary_state(BasicBlock(1));
        assert!(in_bb1.contains(0));
    }

    #[test]
    fn defs_of_local_enumerates_all_sites() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let y = b.local("y", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.assign(y, Rvalue::Use(Operand::int(2)));
        b.assign(x, Rvalue::Use(Operand::int(3)));
        b.ret();
        let body = b.finish();
        let defs = Definitions::collect(&body);
        assert_eq!(defs.of_local(x), vec![0, 2]);
        assert_eq!(defs.of_local(y), vec![1]);
        assert!(!defs.is_empty());
    }
}
