//! A generic worklist dataflow engine.
//!
//! Analyses implement [`Analysis`]; [`solve`] iterates block transfer
//! functions to a fixpoint and returns per-block boundary states in a
//! [`Results`], which can replay transfers to recover the state at any
//! individual [`Location`].

use rstudy_mir::visit::Location;
use rstudy_mir::{BasicBlock, Body, Statement, Terminator};

use crate::cfg::Cfg;

/// Direction of dataflow propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from entry toward return (e.g. initialized-ness).
    Forward,
    /// Facts flow from return toward entry (e.g. liveness).
    Backward,
}

/// A dataflow problem over a single body.
pub trait Analysis {
    /// The abstract state tracked per program point.
    type Domain: Clone + PartialEq;

    /// Short name used for telemetry keys (`analysis.<name>.*`).
    fn name(&self) -> &'static str {
        "dataflow"
    }

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The least element (state assumed before anything is known).
    fn bottom(&self, body: &Body) -> Self::Domain;

    /// Adjusts the boundary state of the entry block (forward) or of every
    /// exit block (backward). Defaults to no adjustment.
    fn initialize(&self, _body: &Body, _state: &mut Self::Domain) {}

    /// Joins `from` into `into`; returns `true` if `into` changed.
    fn join(&self, into: &mut Self::Domain, from: &Self::Domain) -> bool;

    /// Applies one statement's transfer function.
    fn apply_statement(&self, state: &mut Self::Domain, stmt: &Statement, loc: Location);

    /// Applies one terminator's transfer function.
    fn apply_terminator(&self, state: &mut Self::Domain, term: &Terminator, loc: Location);
}

/// Fixpoint results: one boundary state per block.
///
/// For a forward analysis the boundary is the block's *entry*; for a
/// backward analysis it is the block's *exit*.
#[derive(Debug, Clone)]
pub struct Results<A: Analysis> {
    /// The analysis instance (kept to replay transfers).
    pub analysis: A,
    /// Per-block boundary state, indexed by block.
    pub boundary: Vec<A::Domain>,
}

impl<A: Analysis> Results<A> {
    /// The boundary state of `bb` (entry for forward, exit for backward).
    pub fn boundary_state(&self, bb: BasicBlock) -> &A::Domain {
        &self.boundary[bb.index()]
    }

    /// The state *before* the instruction at `loc` executes, in program
    /// order (for both directions).
    pub fn state_before(&self, body: &Body, loc: Location) -> A::Domain {
        let data = body.block(loc.block);
        let mut state = self.boundary[loc.block.index()].clone();
        match self.analysis.direction() {
            Direction::Forward => {
                for (i, stmt) in data.statements.iter().enumerate().take(loc.statement_index) {
                    self.analysis.apply_statement(
                        &mut state,
                        stmt,
                        Location {
                            block: loc.block,
                            statement_index: i,
                        },
                    );
                }
            }
            Direction::Backward => {
                // Backward input of `loc` = replay the terminator and every
                // statement at or after `loc`, last to first.
                let n = data.statements.len();
                if let Some(term) = &data.terminator {
                    self.analysis.apply_terminator(
                        &mut state,
                        term,
                        Location {
                            block: loc.block,
                            statement_index: n,
                        },
                    );
                }
                for i in (loc.statement_index..n).rev() {
                    self.analysis.apply_statement(
                        &mut state,
                        &data.statements[i],
                        Location {
                            block: loc.block,
                            statement_index: i,
                        },
                    );
                }
            }
        }
        state
    }

    /// The state *after* the instruction at `loc` executes, in program order.
    pub fn state_after(&self, body: &Body, loc: Location) -> A::Domain {
        match self.analysis.direction() {
            Direction::Forward => {
                let mut state = self.state_before(body, loc);
                let data = body.block(loc.block);
                if loc.statement_index < data.statements.len() {
                    self.analysis.apply_statement(
                        &mut state,
                        &data.statements[loc.statement_index],
                        loc,
                    );
                } else if let Some(term) = &data.terminator {
                    self.analysis.apply_terminator(&mut state, term, loc);
                }
                state
            }
            Direction::Backward => {
                // After (in program order) = the state the instruction sees
                // as its backward input: replay everything strictly later.
                let data = body.block(loc.block);
                let n = data.statements.len();
                let mut state = self.boundary[loc.block.index()].clone();
                if loc.statement_index < n {
                    if let Some(term) = &data.terminator {
                        self.analysis.apply_terminator(
                            &mut state,
                            term,
                            Location {
                                block: loc.block,
                                statement_index: n,
                            },
                        );
                    }
                    for i in (loc.statement_index + 1..n).rev() {
                        self.analysis.apply_statement(
                            &mut state,
                            &data.statements[i],
                            Location {
                                block: loc.block,
                                statement_index: i,
                            },
                        );
                    }
                }
                state
            }
        }
    }
}

/// Runs `analysis` on `body` to a fixpoint.
pub fn solve<A: Analysis>(analysis: A, body: &Body) -> Results<A> {
    let cfg = Cfg::new(body);
    solve_with_cfg(analysis, body, &cfg)
}

/// Runs `analysis` on `body` using a precomputed [`Cfg`].
pub fn solve_with_cfg<A: Analysis>(analysis: A, body: &Body, cfg: &Cfg) -> Results<A> {
    let n = body.blocks.len();
    let mut boundary: Vec<A::Domain> = (0..n).map(|_| analysis.bottom(body)).collect();
    let direction = analysis.direction();

    let order = match direction {
        Direction::Forward => cfg.reverse_postorder(),
        Direction::Backward => cfg.postorder(),
    };

    match direction {
        Direction::Forward => {
            if n > 0 {
                analysis.initialize(body, &mut boundary[0]);
            }
        }
        Direction::Backward => {
            for bb in body.block_indices() {
                if cfg.successors(bb).is_empty() {
                    analysis.initialize(body, &mut boundary[bb.index()]);
                }
            }
        }
    }

    // Chaotic iteration in a good order until no block changes.
    // Telemetry accumulates locally and flushes once per solve so the hot
    // loop never touches the registry lock.
    let mut changed = true;
    let mut iterations = 0usize;
    let mut block_visits = 0u64;
    let mut joins_changed = 0u64;
    while changed {
        changed = false;
        iterations += 1;
        assert!(
            iterations <= 4 * n + 16,
            "dataflow failed to converge (non-monotone transfer functions?)"
        );
        for &bb in &order {
            // Compute this block's output state by replaying its transfers.
            block_visits += 1;
            let out = block_exit_state(&analysis, body, bb, &boundary[bb.index()]);
            let neighbors: &[BasicBlock] = match direction {
                Direction::Forward => cfg.successors(bb),
                Direction::Backward => cfg.predecessors(bb),
            };
            for &next in neighbors {
                if analysis.join(&mut boundary[next.index()], &out) {
                    changed = true;
                    joins_changed += 1;
                }
            }
        }
    }

    // The lazy-name variants only build their `format!` strings when
    // telemetry is enabled, so this block costs one atomic load per solve
    // on unprofiled runs.
    let name = analysis.name();
    rstudy_telemetry::counter_with(|| format!("analysis.{name}.solves"), 1);
    rstudy_telemetry::counter_with(|| format!("analysis.{name}.block_visits"), block_visits);
    rstudy_telemetry::counter_with(|| format!("analysis.{name}.worklist_pushes"), joins_changed);
    rstudy_telemetry::record_with(|| format!("analysis.{name}.iterations"), iterations as u64);

    Results { analysis, boundary }
}

/// Applies all of `bb`'s transfers (in the analysis direction) to `input`.
fn block_exit_state<A: Analysis>(
    analysis: &A,
    body: &Body,
    bb: BasicBlock,
    input: &A::Domain,
) -> A::Domain {
    let data = body.block(bb);
    let n = data.statements.len();
    let mut state = input.clone();
    match analysis.direction() {
        Direction::Forward => {
            for (i, stmt) in data.statements.iter().enumerate() {
                analysis.apply_statement(
                    &mut state,
                    stmt,
                    Location {
                        block: bb,
                        statement_index: i,
                    },
                );
            }
            if let Some(term) = &data.terminator {
                analysis.apply_terminator(
                    &mut state,
                    term,
                    Location {
                        block: bb,
                        statement_index: n,
                    },
                );
            }
        }
        Direction::Backward => {
            if let Some(term) = &data.terminator {
                analysis.apply_terminator(
                    &mut state,
                    term,
                    Location {
                        block: bb,
                        statement_index: n,
                    },
                );
            }
            for i in (0..n).rev() {
                analysis.apply_statement(
                    &mut state,
                    &data.statements[i],
                    Location {
                        block: bb,
                        statement_index: i,
                    },
                );
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;
    use rstudy_mir::build::BodyBuilder;
    use rstudy_mir::{Operand, Rvalue, StatementKind, Ty};

    /// Forward "has been assigned" analysis used to exercise the engine.
    struct Assigned;

    impl Analysis for Assigned {
        type Domain = BitSet;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn bottom(&self, body: &Body) -> BitSet {
            BitSet::new(body.locals.len())
        }

        fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
            into.union_with(from)
        }

        fn apply_statement(&self, state: &mut BitSet, stmt: &Statement, _loc: Location) {
            if let StatementKind::Assign(place, _) = &stmt.kind {
                if place.is_local() {
                    state.insert(place.local.index());
                }
            }
        }

        fn apply_terminator(&self, _state: &mut BitSet, _term: &Terminator, _loc: Location) {}
    }

    #[test]
    fn forward_facts_merge_at_joins() {
        // bb0: branch; bb1 assigns _1; bb2 assigns _2; bb3 joins.
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let y = b.local("y", Ty::Int);
        let (t, e) = b.branch_bool(Operand::int(1));
        let join = b.new_block();
        b.switch_to(t);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.goto(join);
        b.switch_to(e);
        b.assign(y, Rvalue::Use(Operand::int(2)));
        b.goto(join);
        b.switch_to(join);
        b.ret();
        let body = b.finish();

        let results = solve(Assigned, &body);
        let at_join = results.boundary_state(rstudy_mir::BasicBlock(3));
        // May-analysis: both arms' facts are unioned.
        assert!(at_join.contains(x.index()));
        assert!(at_join.contains(y.index()));
        let at_entry = results.boundary_state(rstudy_mir::BasicBlock(0));
        assert!(at_entry.is_empty());
    }

    #[test]
    fn state_before_and_after_replay_statements() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.ret();
        let body = b.finish();
        let results = solve(Assigned, &body);
        let loc = Location {
            block: rstudy_mir::BasicBlock(0),
            statement_index: 0,
        };
        assert!(!results.state_before(&body, loc).contains(x.index()));
        assert!(results.state_after(&body, loc).contains(x.index()));
    }

    #[test]
    fn loops_reach_fixpoint() {
        // A loop whose body assigns _1; the fact must flow around the back edge.
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        let header = b.goto_cont();
        let body_bb = b.new_block();
        let exit = b.new_block();
        b.switch_int(Operand::int(0), vec![(0, body_bb)], exit);
        b.switch_to(body_bb);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.goto(header);
        b.switch_to(exit);
        b.ret();
        let body = b.finish();
        let results = solve(Assigned, &body);
        // After one trip through the loop the fact reaches the header.
        assert!(results.boundary_state(header).contains(x.index()));
        assert!(results.boundary_state(exit).contains(x.index()));
    }
}
