//! Mapping source-level Rust types onto the IR's small type language.
//!
//! The IR collapses all integer widths into `int` and keeps structs opaque
//! ([`Ty::Named`]), so the mapping is total only over a conservative subset:
//! scalars, references, raw pointers, `()`, tuples of mappable types, and
//! bare named types. Anything else (generics, slices, trait objects, `impl
//! Trait`, function pointers, floats) returns `None` and the surrounding
//! function is skipped with an `unsupported-type` counter.

use rstudy_mir::{Mutability, Ty};
use rstudy_scan::lexer::{Token, TokenKind};

/// Integer type names that all map to the IR's single `int`.
const INT_NAMES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

fn peek(toks: &[Token], pos: usize) -> Option<&TokenKind> {
    toks.get(pos).map(|t| &t.kind)
}

fn is_punct(toks: &[Token], pos: usize, c: char) -> bool {
    matches!(peek(toks, pos), Some(TokenKind::Punct(p)) if *p == c)
}

/// Parses a type starting at `*pos`, advancing past it on success.
///
/// On failure the cursor position is unspecified and the caller must abandon
/// the function (every caller does — type failure skips the whole `fn`).
pub(crate) fn parse_ty(toks: &[Token], pos: &mut usize) -> Option<Ty> {
    // Lifetimes can prefix reference targets (`&'a T`); they carry no
    // information the IR keeps.
    while matches!(peek(toks, *pos), Some(TokenKind::Lifetime(_))) {
        *pos += 1;
    }
    match peek(toks, *pos)? {
        TokenKind::Punct('&') => {
            *pos += 1;
            while matches!(peek(toks, *pos), Some(TokenKind::Lifetime(_))) {
                *pos += 1;
            }
            let mutability = if matches!(peek(toks, *pos), Some(TokenKind::Ident(w)) if w == "mut")
            {
                *pos += 1;
                Mutability::Mut
            } else {
                Mutability::Not
            };
            let inner = parse_ty(toks, pos)?;
            Some(Ty::Ref(mutability, Box::new(inner)))
        }
        TokenKind::Punct('*') => {
            *pos += 1;
            let mutability = match peek(toks, *pos)? {
                TokenKind::Ident(w) if w == "const" => Mutability::Not,
                TokenKind::Ident(w) if w == "mut" => Mutability::Mut,
                _ => return None,
            };
            *pos += 1;
            let inner = parse_ty(toks, pos)?;
            Some(Ty::RawPtr(mutability, Box::new(inner)))
        }
        TokenKind::Punct('(') => {
            *pos += 1;
            if is_punct(toks, *pos, ')') {
                *pos += 1;
                return Some(Ty::Unit);
            }
            let mut elems = Vec::new();
            loop {
                elems.push(parse_ty(toks, pos)?);
                if is_punct(toks, *pos, ')') {
                    *pos += 1;
                    break;
                }
                if !is_punct(toks, *pos, ',') {
                    return None;
                }
                *pos += 1;
                // Trailing comma.
                if is_punct(toks, *pos, ')') {
                    *pos += 1;
                    break;
                }
            }
            if elems.len() == 1 {
                // `(T)` is just parenthesization.
                return elems.pop();
            }
            Some(Ty::Tuple(elems))
        }
        TokenKind::Ident(name) => {
            let name = name.clone();
            // Path types, generic instantiations, and special forms are all
            // outside the lowered subset.
            if matches!(
                name.as_str(),
                "dyn" | "impl" | "fn" | "f32" | "f64" | "char"
            ) {
                return None;
            }
            *pos += 1;
            if is_punct(toks, *pos, ':') && is_punct(toks, *pos + 1, ':') {
                return None;
            }
            if is_punct(toks, *pos, '<') {
                return None;
            }
            if INT_NAMES.contains(&name.as_str()) {
                return Some(Ty::Int);
            }
            if name == "bool" {
                return Some(Ty::Bool);
            }
            Some(Ty::Named(name))
        }
        _ => None,
    }
}

/// The opaque stand-in type for values whose source type is unknown at
/// lowering time (call results, field reads through opaque structs).
pub(crate) fn opaque() -> Ty {
    Ty::Named("Opaque".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_scan::lex;

    fn ty(src: &str) -> Option<Ty> {
        let toks = lex(src);
        let mut pos = 0;
        let t = parse_ty(&toks, &mut pos)?;
        // The whole token stream must be consumed — partial parses would
        // silently mis-read signatures.
        if pos != toks.len() {
            return None;
        }
        Some(t)
    }

    #[test]
    fn integer_widths_collapse_to_int() {
        for name in INT_NAMES {
            assert_eq!(ty(name), Some(Ty::Int), "{name}");
        }
    }

    #[test]
    fn scalars_and_unit() {
        assert_eq!(ty("bool"), Some(Ty::Bool));
        assert_eq!(ty("()"), Some(Ty::Unit));
    }

    #[test]
    fn references_and_raw_pointers_recurse() {
        assert_eq!(ty("&u32"), Some(Ty::shared_ref(Ty::Int)));
        assert_eq!(ty("&mut bool"), Some(Ty::mut_ref(Ty::Bool)));
        assert_eq!(ty("*const i64"), Some(Ty::const_ptr(Ty::Int)));
        assert_eq!(ty("*mut *mut u8"), Some(Ty::mut_ptr(Ty::mut_ptr(Ty::Int))));
        assert_eq!(ty("&'a str"), Some(Ty::shared_ref(Ty::Named("str".into()))));
    }

    #[test]
    fn named_types_stay_opaque() {
        assert_eq!(ty("Header"), Some(Ty::Named("Header".into())));
        assert_eq!(ty("String"), Some(Ty::Named("String".into())));
    }

    #[test]
    fn tuples_of_mappable_types() {
        assert_eq!(ty("(u8, bool)"), Some(Ty::Tuple(vec![Ty::Int, Ty::Bool])));
    }

    #[test]
    fn unsupported_forms_are_rejected() {
        for bad in [
            "Vec<u8>",
            "std::io::Error",
            "dyn Trait",
            "impl Iterator",
            "fn(i32)",
            "f64",
            "[u8]",
            "char",
        ] {
            assert_eq!(ty(bad), None, "{bad}");
        }
    }
}
