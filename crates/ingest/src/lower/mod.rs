//! Lowering real Rust function bodies into the textual MIR dialect.
//!
//! The lowerer is deliberately conservative: it accepts a straight-line
//! subset of Rust (locals, assignments, `&`/`&mut` borrows, field and index
//! projections, calls, early returns, drops, `unsafe` regions) and skips
//! everything else with a per-reason counter — the same philosophy as the
//! walker and scanner: real trees never abort, they degrade into counted
//! skips. Every function that does lower is built through
//! [`BodyBuilder`], pretty-printed, and validated, so the emitted text is a
//! `parse(pretty(p))` fixpoint that downstream consumers (the detector
//! suite, `rstudy-serve`) can load without special cases.
//!
//! Calls are resolved in a post-pass: a call to a function that lowered in
//! the same file becomes a direct [`Callee::Fn`]; anything else (different
//! file, generic, skipped, method, path) is rewritten to the variadic
//! `ffi::extern_call` intrinsic — an honest "opaque non-lowered code"
//! marker the analyses already understand.

mod expr;
mod tymap;

use std::collections::{BTreeMap, BTreeSet};

use rstudy_mir::build::BodyBuilder;
use rstudy_mir::{
    validate::validate_program, Body, Callee, Intrinsic, Local, Place, Program, Rvalue, Safety,
    TerminatorKind, Ty,
};
use rstudy_scan::lexer::{lex, Token, TokenKind};
use serde::{Deserialize, Serialize};

use tymap::parse_ty;

/// A lowering failure is a stable skip-reason key; granularity is the whole
/// function (one unsupported construct skips the `fn` that contains it).
pub(crate) type Lower<T> = Result<T, &'static str>;

/// One successfully lowered function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredFn {
    /// Function name (unique within the file's lowered program).
    pub name: String,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
}

/// The result of lowering one source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileLowering {
    /// The lowered program in textual MIR, if any function lowered.
    pub program: Option<String>,
    /// Entry function of the lowered program (first lowered, source order).
    pub entry: Option<String>,
    /// Every lowered function, in source order.
    pub functions: Vec<LoweredFn>,
    /// Counted reasons for every function that did not lower.
    pub skipped: BTreeMap<String, usize>,
}

/// Lowers every lowerable function in `src` into one textual MIR program.
pub fn lower_source(src: &str) -> FileLowering {
    let toks = lex(src);
    let mut out = FileLowering::default();
    let mut bodies: Vec<Body> = Vec::new();
    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            // `fn(` — a function-pointer type, not an item.
            i += 1;
            continue;
        };
        let line = toks[i].line;
        let m = scan_modifiers(&toks, i);
        let outcome = if m.is_async {
            Err("async")
        } else if names.contains(name) {
            Err("duplicate-name")
        } else {
            lower_fn(&toks, i, m.is_unsafe)
        };
        match outcome {
            Ok(body) => {
                names.insert(body.name.clone());
                out.functions.push(LoweredFn {
                    name: body.name.clone(),
                    line,
                });
                bodies.push(body);
            }
            Err(reason) => {
                *out.skipped.entry(reason.to_owned()).or_insert(0) += 1;
            }
        }
        // Continue scanning *inside* the item so nested/test functions are
        // still discovered when the enclosing one was skipped.
        i += 2;
    }
    if bodies.is_empty() {
        return out;
    }
    resolve_calls(&mut bodies);
    let entry = bodies[0].name.clone();
    let mut program = Program::from_bodies(bodies);
    program.set_entry(entry.clone());
    if validate_program(&program).is_err() {
        // Defensive: a lowering bug must degrade into a counted skip, not a
        // corrupt manifest entry.
        *out.skipped.entry("validate-failed".to_owned()).or_insert(0) += out.functions.len();
        out.functions.clear();
        return out;
    }
    out.program = Some(rstudy_mir::pretty::program_to_string(&program));
    out.entry = Some(entry);
    out
}

struct Modifiers {
    is_unsafe: bool,
    is_async: bool,
}

/// Scans the modifier run before a `fn` keyword (`pub(crate) const unsafe
/// extern "C" fn ...`) without being confused by unrelated preceding tokens.
fn scan_modifiers(toks: &[Token], fn_idx: usize) -> Modifiers {
    let mut m = Modifiers {
        is_unsafe: false,
        is_async: false,
    };
    let lo = fn_idx.saturating_sub(8);
    let mut j = fn_idx;
    while j > lo {
        j -= 1;
        match &toks[j].kind {
            TokenKind::Ident(w) if w == "unsafe" => m.is_unsafe = true,
            TokenKind::Ident(w) if w == "async" => m.is_async = true,
            TokenKind::Ident(w)
                if matches!(
                    w.as_str(),
                    "pub" | "const" | "extern" | "default" | "crate" | "super" | "self" | "in"
                ) => {}
            TokenKind::Literal(_) | TokenKind::Punct('(') | TokenKind::Punct(')') => {}
            _ => break,
        }
    }
    m
}

/// Finds the index of the `}` matching the `{` at `open`, bounded by `end`.
pub(crate) fn matching_brace(toks: &[Token], open: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn lower_fn(toks: &[Token], fn_idx: usize, is_unsafe: bool) -> Lower<Body> {
    let name = toks[fn_idx + 1].ident().unwrap().to_owned();
    let mut pos = fn_idx + 2;
    let punct_at = |p: usize, c: char| matches!(toks.get(p).map(|t| &t.kind), Some(TokenKind::Punct(x)) if *x == c);
    let ident_at = |p: usize| -> Option<&str> { toks.get(p).and_then(|t| t.ident()) };
    if punct_at(pos, '<') {
        return Err("generics");
    }
    if !punct_at(pos, '(') {
        return Err("unsupported-signature");
    }
    pos += 1;
    let mut params: Vec<(String, Ty)> = Vec::new();
    loop {
        if punct_at(pos, ')') {
            pos += 1;
            break;
        }
        if punct_at(pos, '&') {
            // `&self` / `&'a self` / `&mut self`
            pos += 1;
            while matches!(toks.get(pos).map(|t| &t.kind), Some(TokenKind::Lifetime(_))) {
                pos += 1;
            }
            let mutable = ident_at(pos) == Some("mut");
            if mutable {
                pos += 1;
            }
            if ident_at(pos) != Some("self") {
                return Err("unsupported-pattern");
            }
            pos += 1;
            let inner = Ty::Named("Self".to_owned());
            let ty = if mutable {
                Ty::mut_ref(inner)
            } else {
                Ty::shared_ref(inner)
            };
            params.push(("self".to_owned(), ty));
        } else {
            if ident_at(pos) == Some("mut") {
                pos += 1;
            }
            let Some(pname) = ident_at(pos) else {
                return Err("unsupported-pattern");
            };
            let mut pname = pname.to_owned();
            pos += 1;
            if pname == "self" {
                params.push(("self".to_owned(), Ty::Named("Self".to_owned())));
            } else {
                if pname == "_" {
                    pname = format!("arg{}", params.len());
                }
                if !punct_at(pos, ':') {
                    return Err("unsupported-pattern");
                }
                pos += 1;
                let ty = parse_ty(toks, &mut pos).ok_or("unsupported-type")?;
                params.push((pname, ty));
            }
        }
        if punct_at(pos, ',') {
            pos += 1;
        } else if !punct_at(pos, ')') {
            return Err("unsupported-signature");
        }
    }
    let ret_ty = if punct_at(pos, '-') && punct_at(pos + 1, '>') {
        pos += 2;
        parse_ty(toks, &mut pos).ok_or("unsupported-type")?
    } else {
        Ty::Unit
    };
    if ident_at(pos) == Some("where") {
        return Err("generics");
    }
    if punct_at(pos, ';') {
        return Err("no-body");
    }
    if !punct_at(pos, '{') {
        return Err("unsupported-signature");
    }
    let close = matching_brace(toks, pos, toks.len()).ok_or("unsupported-signature")?;

    let mut b = BodyBuilder::new(&name, params.len(), ret_ty.clone());
    if is_unsafe {
        b.unsafe_fn();
    }
    let mut scope = Vec::new();
    for (pname, pty) in &params {
        let l = b.arg(pname.clone(), pty.clone());
        scope.push((pname.clone(), l, pty.clone()));
    }
    let mut fl = FnLowerer {
        toks,
        pos: pos + 1,
        end: close,
        b,
        scope,
        owned: Vec::new(),
        fields: BTreeMap::new(),
        ret_ty,
        base_unsafe: is_unsafe,
        unsafe_depth: 0,
    };
    let returned = fl.lower_stmts()?;
    if !returned {
        if fl.ret_ty != Ty::Unit {
            return Err("missing-return");
        }
        fl.epilogue_ret();
    }
    Ok(fl.b.finish())
}

/// Rewrites calls whose target did not lower in the same file into the
/// variadic `ffi::extern_call` intrinsic, keeping programs self-contained.
fn resolve_calls(bodies: &mut [Body]) {
    let known: BTreeMap<String, usize> = bodies
        .iter()
        .map(|b| (b.name.clone(), b.arg_count))
        .collect();
    for body in bodies.iter_mut() {
        for blk in &mut body.blocks {
            if let Some(term) = &mut blk.terminator {
                if let TerminatorKind::Call { func, args, .. } = &mut term.kind {
                    if let Callee::Fn(callee) = func {
                        match known.get(callee.as_str()) {
                            Some(&arity) if arity == args.len() => {}
                            _ => *func = Callee::Intrinsic(Intrinsic::ExternCall),
                        }
                    }
                }
            }
        }
    }
}

/// Token-cursor state while lowering a single function body.
pub(crate) struct FnLowerer<'t> {
    pub(crate) toks: &'t [Token],
    pub(crate) pos: usize,
    /// Exclusive end of the region being lowered (the enclosing `}`).
    pub(crate) end: usize,
    pub(crate) b: BodyBuilder,
    /// Declared bindings: `(source name, local, type)`.
    pub(crate) scope: Vec<(String, Local, Ty)>,
    /// Locals that need `StorageDead` before return, in declaration order.
    pub(crate) owned: Vec<Local>,
    /// Interned field names → stable projection indices (first-use order).
    pub(crate) fields: BTreeMap<String, u32>,
    pub(crate) ret_ty: Ty,
    pub(crate) base_unsafe: bool,
    pub(crate) unsafe_depth: usize,
}

impl FnLowerer<'_> {
    pub(crate) fn kind_at(&self, off: usize) -> Option<&TokenKind> {
        let i = self.pos + off;
        if i >= self.end {
            return None;
        }
        self.toks.get(i).map(|t| &t.kind)
    }

    pub(crate) fn peek_punct_at(&self, off: usize, c: char) -> bool {
        matches!(self.kind_at(off), Some(TokenKind::Punct(p)) if *p == c)
    }

    pub(crate) fn peek_punct(&self, c: char) -> bool {
        self.peek_punct_at(0, c)
    }

    pub(crate) fn ident_at(&self, off: usize) -> Option<&str> {
        match self.kind_at(off) {
            Some(TokenKind::Ident(s)) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn eat_punct(&mut self, c: char) -> bool {
        if self.peek_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<(Local, Ty)> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map(|(_, l, t)| (*l, t.clone()))
    }

    pub(crate) fn field_idx(&mut self, name: &str) -> u32 {
        let next = self.fields.len() as u32;
        *self.fields.entry(name.to_owned()).or_insert(next)
    }

    pub(crate) fn sync_safety(&mut self) {
        let s = if self.base_unsafe || self.unsafe_depth > 0 {
            Safety::Unsafe
        } else {
            Safety::Safe
        };
        self.b.set_safety(s);
    }

    /// `StorageDead` for every owned local (reverse order), then `Return`.
    fn epilogue_ret(&mut self) {
        for i in (0..self.owned.len()).rev() {
            let l = self.owned[i];
            self.b.storage_dead(l);
        }
        self.b.ret();
    }

    fn lower_stmts(&mut self) -> Lower<bool> {
        while self.pos < self.end {
            let line = self.toks[self.pos].line;
            self.b.at_line(line);
            if self.eat_punct(';') {
                continue;
            }
            if self.peek_punct('#') && self.peek_punct_at(1, '[') {
                self.skip_attr()?;
                continue;
            }
            if let Some(word) = self.ident_at(0).map(str::to_owned) {
                match word.as_str() {
                    "let" => {
                        self.let_stmt()?;
                        continue;
                    }
                    "return" => {
                        self.return_stmt()?;
                        self.pos = self.end;
                        return Ok(true);
                    }
                    "unsafe" if self.peek_punct_at(1, '{') => {
                        let close = matching_brace(self.toks, self.pos + 1, self.end)
                            .ok_or("unsupported-stmt")?;
                        self.pos += 2;
                        if self.block_stmts(close, true)? {
                            return Ok(true);
                        }
                        continue;
                    }
                    "if" | "while" | "loop" | "for" | "match" => return Err("control-flow"),
                    "fn" => return Err("nested-fn"),
                    "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "static" | "const"
                    | "type" | "macro_rules" => return Err("nested-item"),
                    // A non-trivial argument fails the guard (without
                    // consuming tokens) and falls through to be lowered as
                    // an ordinary (extern) call.
                    "drop" if self.peek_punct_at(1, '(') && self.try_drop_stmt() => {
                        continue;
                    }
                    _ => {}
                }
            }
            if self.peek_punct('{') {
                let close =
                    matching_brace(self.toks, self.pos, self.end).ok_or("unsupported-stmt")?;
                self.pos += 1;
                if self.block_stmts(close, false)? {
                    return Ok(true);
                }
                continue;
            }
            if self.expr_or_assign_stmt()? {
                self.pos = self.end;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Lowers the statements of a nested `{ ... }` region ending at `close`.
    fn block_stmts(&mut self, close: usize, unsafe_block: bool) -> Lower<bool> {
        let saved_end = self.end;
        self.end = close;
        if unsafe_block {
            self.unsafe_depth += 1;
            self.sync_safety();
        }
        let returned = self.lower_stmts()?;
        if unsafe_block {
            self.unsafe_depth -= 1;
            self.sync_safety();
        }
        self.end = saved_end;
        self.pos = close + 1;
        Ok(returned)
    }

    fn skip_attr(&mut self) -> Lower<()> {
        // pos is at `#`; skip `#[ ... ]` with bracket matching.
        self.pos += 1;
        let mut depth = 0usize;
        while self.pos < self.end {
            if self.peek_punct('[') {
                depth += 1;
            } else if self.peek_punct(']') {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return Ok(());
                }
            }
            self.pos += 1;
        }
        Err("unsupported-stmt")
    }

    fn let_stmt(&mut self) -> Lower<()> {
        self.pos += 1; // `let`
        if self.ident_at(0) == Some("mut") {
            self.pos += 1;
        }
        let Some(name) = self.ident_at(0).map(str::to_owned) else {
            return Err("unsupported-pattern");
        };
        self.pos += 1;
        if name == "_" && !self.peek_punct(':') {
            // `let _ = expr;` — evaluate for effect, bind nothing.
            if !self.eat_punct('=') || self.peek_punct('=') {
                return Err("unsupported-stmt");
            }
            let _ = self.expr()?;
            if !self.eat_punct(';') {
                return Err("unsupported-expr");
            }
            return Ok(());
        }
        if self.lookup(&name).is_some() {
            return Err("shadowing");
        }
        let ann = if self.eat_punct(':') {
            Some(parse_ty(self.toks, &mut self.pos).ok_or("unsupported-type")?)
        } else {
            None
        };
        if !self.peek_punct('=') || self.peek_punct_at(1, '=') {
            return Err("unsupported-stmt");
        }
        self.pos += 1;
        let (op, inferred) = self.expr()?;
        if !self.eat_punct(';') {
            return Err("unsupported-expr");
        }
        let ty = ann.unwrap_or(inferred);
        let l = self.b.local(name.clone(), ty.clone());
        self.b.storage_live(l);
        self.b.assign(l, Rvalue::Use(op));
        self.scope.push((name, l, ty));
        self.owned.push(l);
        Ok(())
    }

    fn return_stmt(&mut self) -> Lower<()> {
        self.pos += 1; // `return`
        if !self.eat_punct(';') {
            let (op, _) = self.expr()?;
            let _ = self.eat_punct(';');
            self.b.assign(Place::RETURN, Rvalue::Use(op));
        }
        self.epilogue_ret();
        Ok(())
    }

    fn try_drop_stmt(&mut self) -> bool {
        // Exact shape `drop(x);` where `x` is a binding → a Drop terminator.
        let Some(arg) = self.ident_at(2).map(str::to_owned) else {
            return false;
        };
        if !(self.peek_punct_at(3, ')') && self.peek_punct_at(4, ';')) {
            return false;
        }
        let Some((l, _)) = self.lookup(&arg) else {
            return false;
        };
        self.pos += 5;
        self.b.drop_cont(l);
        true
    }

    /// `place = expr;`, `place op= expr;`, or a bare expression statement.
    /// Returns `true` if the statement was a tail expression (function over).
    fn expr_or_assign_stmt(&mut self) -> Lower<bool> {
        if let Some((place, binop)) = self.take_assign_target() {
            let (rhs, _) = self.expr()?;
            if !self.eat_punct(';') {
                return Err("unsupported-expr");
            }
            let rv = match binop {
                None => Rvalue::Use(rhs),
                Some(op) => Rvalue::BinaryOp(op, rstudy_mir::Operand::Copy(place.clone()), rhs),
            };
            self.b.assign_place(place, rv);
            return Ok(false);
        }
        let (op, _) = self.expr()?;
        if self.eat_punct(';') {
            return Ok(false);
        }
        if self.pos == self.end {
            // Tail expression: the function's return value.
            if self.ret_ty != Ty::Unit {
                self.b.assign(Place::RETURN, Rvalue::Use(op));
            }
            self.epilogue_ret();
            return Ok(true);
        }
        Err("unsupported-expr")
    }

    /// Recognizes `[*]? binding (.field)* =` (or `op=`) and consumes through
    /// the `=`, returning the target place. Leaves the cursor untouched when
    /// the lookahead does not match.
    fn take_assign_target(&mut self) -> Option<(Place, Option<rstudy_mir::BinOp>)> {
        use rstudy_mir::BinOp;
        let mut j = 0usize;
        let deref = self.peek_punct_at(j, '*');
        if deref {
            j += 1;
        }
        let name = self.ident_at(j)?.to_owned();
        let (local, _) = self.lookup(&name)?;
        j += 1;
        let mut fields: Vec<String> = Vec::new();
        while self.peek_punct_at(j, '.') {
            let f = self.ident_at(j + 1)?.to_owned();
            if self.peek_punct_at(j + 2, '(') {
                return None; // method call, not a place
            }
            fields.push(f);
            j += 2;
        }
        let binop = if self.peek_punct_at(j, '=') && !self.peek_punct_at(j + 1, '=') {
            None
        } else {
            let c = match self.kind_at(j) {
                Some(TokenKind::Punct(c)) => *c,
                _ => return None,
            };
            if !self.peek_punct_at(j + 1, '=') {
                return None;
            }
            let op = match c {
                '+' => BinOp::Add,
                '-' => BinOp::Sub,
                '*' => BinOp::Mul,
                '/' => BinOp::Div,
                '%' => BinOp::Rem,
                _ => return None,
            };
            j += 1;
            Some(op)
        };
        let mut place = Place::from_local(local);
        if deref {
            place = place.deref();
        }
        for f in fields {
            let idx = self.field_idx(&f);
            place = place.field(idx);
        }
        self.pos += j + 1; // past the `=`
        Some((place, binop))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstudy_mir::parse::parse_program;

    fn lowered(src: &str) -> FileLowering {
        lower_source(src)
    }

    fn program(src: &str) -> Program {
        let out = lowered(src);
        let text = out.program.expect("no function lowered");
        parse_program(&text).expect("lowered text must re-parse")
    }

    #[test]
    fn lowers_straightline_arithmetic() {
        let p = program("fn add(a: i32, b: i32) -> i32 { let c = a + b; c }");
        let body = p.function("add").unwrap();
        assert_eq!(body.arg_count, 2);
        assert_eq!(p.entry(), "add");
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn early_return_and_drop() {
        let p = program("fn f(x: u8) -> u8 { let y = x; drop(y); return x; }");
        let body = p.function("f").unwrap();
        let has_drop = body.blocks.iter().any(|b| {
            matches!(
                &b.terminator.as_ref().unwrap().kind,
                TerminatorKind::Drop { .. }
            )
        });
        assert!(has_drop);
    }

    #[test]
    fn unsafe_fn_and_unsafe_blocks_mark_safety() {
        let out = lowered(
            "unsafe fn raw(p: *mut i32) { *p = 1; }\n\
             fn wrap(p: *mut i32) { unsafe { *p = 2; } }",
        );
        let p = parse_program(out.program.as_ref().unwrap()).unwrap();
        assert!(p.function("raw").unwrap().is_unsafe_fn);
        let wrap = p.function("wrap").unwrap();
        assert!(!wrap.is_unsafe_fn);
        let any_unsafe_stmt = wrap
            .blocks
            .iter()
            .flat_map(|b| &b.statements)
            .any(|s| s.source_info.safety.is_unsafe());
        assert!(any_unsafe_stmt);
    }

    #[test]
    fn same_file_calls_are_direct_others_extern() {
        let p = program(
            "fn helper(x: i32) -> i32 { x }\n\
             fn main2() -> i32 { let a = helper(1); let b = outside(2); a + b }",
        );
        let main2 = p.function("main2").unwrap();
        let mut direct = 0;
        let mut external = 0;
        for blk in &main2.blocks {
            if let TerminatorKind::Call { func, .. } = &blk.terminator.as_ref().unwrap().kind {
                match func {
                    Callee::Fn(n) if n == "helper" => direct += 1,
                    Callee::Intrinsic(Intrinsic::ExternCall) => external += 1,
                    other => panic!("unexpected callee {other:?}"),
                }
            }
        }
        assert_eq!((direct, external), (1, 1));
    }

    #[test]
    fn method_calls_and_paths_become_extern_calls() {
        let p = program("fn f(v: Thing) -> i32 { let n = v.len(); Config::default(); n as i32 }");
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn field_reads_project_deterministically() {
        let out1 = lowered("fn f(s: &State) -> i32 { let a = s.x; let b = s.y; a + b }");
        let out2 = lowered("fn f(s: &State) -> i32 { let a = s.x; let b = s.y; a + b }");
        assert_eq!(out1.program, out2.program);
        assert!(out1.program.is_some());
    }

    #[test]
    fn control_flow_is_skipped_with_reason() {
        let out = lowered("fn f(x: i32) -> i32 { if x > 0 { x } else { 0 } }");
        assert!(out.program.is_none());
        assert_eq!(out.skipped.get("control-flow"), Some(&1));
    }

    #[test]
    fn generics_and_missing_bodies_are_counted() {
        let out = lowered(
            "fn g<T>(x: T) -> T { x }\n\
             trait T { fn decl(&self); }\n\
             fn ok() {}",
        );
        assert_eq!(out.skipped.get("generics"), Some(&1));
        assert_eq!(out.skipped.get("no-body"), Some(&1));
        assert_eq!(out.functions.len(), 1);
    }

    #[test]
    fn macros_and_closures_are_skipped() {
        let out = lowered(
            "fn m() { println!(\"hi\"); }\n\
             fn c() { let f = |x: i32| x; }",
        );
        assert!(out.program.is_none());
        assert_eq!(out.skipped.len(), 2);
    }

    #[test]
    fn duplicate_names_keep_first() {
        let out = lowered("fn f() {}\nfn f() { let x = 1; }");
        assert_eq!(out.functions.len(), 1);
        assert_eq!(out.skipped.get("duplicate-name"), Some(&1));
    }

    #[test]
    fn entry_is_first_lowered_function() {
        let out = lowered("fn g<T>() {}\nfn second() {}\nfn third() {}");
        assert_eq!(out.entry.as_deref(), Some("second"));
    }

    #[test]
    fn compound_assign_and_deref_store() {
        let p = program("fn f(p: *mut i32, mut n: i32) { n += 2; unsafe { *p = n; } }");
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn lowered_programs_always_reparse_and_validate() {
        // A grab-bag of shapes; every emitted program must be a fixpoint.
        let srcs = [
            "fn a() -> bool { true }",
            "fn b(x: u64) -> u64 { let y = x * 2; y + 1 }",
            "fn c(s: &mut State) { s.count = 0; }",
            "fn d() -> (i32, bool) { (1, false) }",
            "fn e(xs: &Buf, i: usize) -> u8 { xs.data; 0 }",
            "fn g() { let t = (1, 2); let x = t.0; let _ = x; }",
            "unsafe fn h(p: *const u8) -> u8 { *p }",
        ];
        for src in srcs {
            let out = lowered(src);
            let text = out
                .program
                .unwrap_or_else(|| panic!("{src} did not lower: {:?}", out.skipped));
            let p = parse_program(&text).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert!(validate_program(&p).is_ok(), "{src}");
        }
    }
}
