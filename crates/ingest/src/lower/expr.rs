//! Expression lowering: source expressions → IR operands.
//!
//! Expressions lower by precedence climbing; every compound value is
//! materialized into a fresh temporary (via [`BodyBuilder::temp_assign`] or
//! a call terminator), so the result of lowering any expression is always a
//! plain [`Operand`]. Calls split the current block exactly as MIR does.
//!
//! [`BodyBuilder::temp_assign`]: rstudy_mir::build::BodyBuilder::temp_assign

use rstudy_mir::{BinOp, Callee, Const, Intrinsic, Mutability, Operand, Place, Rvalue, Ty, UnOp};
use rstudy_scan::lexer::TokenKind;

use super::tymap::{opaque, parse_ty};
use super::{FnLowerer, Lower};

impl FnLowerer<'_> {
    /// Lowers one full expression to an operand and its (best-effort) type.
    pub(crate) fn expr(&mut self) -> Lower<(Operand, Ty)> {
        self.expr_bp(0)
    }

    fn expr_bp(&mut self, min_bp: u8) -> Lower<(Operand, Ty)> {
        let (mut lhs, mut ty) = self.unary()?;
        loop {
            // `expr as Ty` binds tighter than any binary operator.
            if self.ident_at(0) == Some("as") && min_bp <= 8 {
                self.pos += 1;
                let target = parse_ty(self.toks, &mut self.pos).ok_or("unsupported-type")?;
                let (o, t) = self.materialize(Rvalue::Cast(lhs, target.clone()), target);
                lhs = o;
                ty = t;
                continue;
            }
            let Some((op, bp, len, boolish)) = self.peek_binop() else {
                break;
            };
            if bp < min_bp {
                break;
            }
            self.pos += len;
            let (rhs, _) = self.expr_bp(bp + 1)?;
            let rty = if boolish { Ty::Bool } else { Ty::Int };
            let (o, t) = self.materialize(Rvalue::BinaryOp(op, lhs, rhs), rty);
            lhs = o;
            ty = t;
        }
        Ok((lhs, ty))
    }

    /// `(operator, binding power, token count, produces bool)`.
    fn peek_binop(&self) -> Option<(BinOp, u8, usize, bool)> {
        let c = match self.kind_at(0) {
            Some(TokenKind::Punct(c)) => *c,
            _ => return None,
        };
        let next = |ch: char| self.peek_punct_at(1, ch);
        Some(match c {
            '|' if next('|') => (BinOp::Or, 1, 2, true),
            '&' if next('&') => (BinOp::And, 2, 2, true),
            '=' if next('=') => (BinOp::Eq, 3, 2, true),
            '!' if next('=') => (BinOp::Ne, 3, 2, true),
            '<' if next('=') => (BinOp::Le, 3, 2, true),
            '>' if next('=') => (BinOp::Ge, 3, 2, true),
            // Shifts are outside the subset; let the caller fail cleanly.
            '<' if next('<') => return None,
            '>' if next('>') => return None,
            '<' => (BinOp::Lt, 3, 1, true),
            '>' => (BinOp::Gt, 3, 1, true),
            '|' => (BinOp::Or, 4, 1, false),
            '&' => (BinOp::And, 5, 1, false),
            '+' => (BinOp::Add, 6, 1, false),
            '-' => (BinOp::Sub, 6, 1, false),
            '*' => (BinOp::Mul, 7, 1, false),
            '/' => (BinOp::Div, 7, 1, false),
            '%' => (BinOp::Rem, 7, 1, false),
            _ => return None,
        })
    }

    fn unary(&mut self) -> Lower<(Operand, Ty)> {
        match self.kind_at(0) {
            Some(TokenKind::Punct('-')) => {
                // Fold negated integer literals into constants.
                if let Some(TokenKind::Literal(txt)) = self.kind_at(1) {
                    if let Some(v) = parse_int_literal(txt) {
                        self.pos += 2;
                        return Ok((Operand::int(-v), Ty::Int));
                    }
                }
                self.pos += 1;
                let (o, _) = self.unary()?;
                Ok(self.materialize(Rvalue::UnaryOp(UnOp::Neg, o), Ty::Int))
            }
            Some(TokenKind::Punct('!')) => {
                self.pos += 1;
                let (o, t) = self.unary()?;
                Ok(self.materialize(Rvalue::UnaryOp(UnOp::Not, o), t))
            }
            Some(TokenKind::Punct('*')) => {
                self.pos += 1;
                let (o, t) = self.unary()?;
                match o {
                    Operand::Copy(p) | Operand::Move(p) => {
                        let pointee = t.pointee().cloned().unwrap_or_else(opaque);
                        Ok((Operand::Copy(p.deref()), pointee))
                    }
                    Operand::Const(_) => Err("unsupported-expr"),
                }
            }
            Some(TokenKind::Punct('&')) => {
                self.pos += 1;
                let mutability = if self.ident_at(0) == Some("mut") {
                    self.pos += 1;
                    Mutability::Mut
                } else {
                    Mutability::Not
                };
                let (o, t) = self.unary()?;
                let place = self.place_of(o, t.clone());
                let ref_ty = Ty::Ref(mutability, Box::new(t));
                Ok(self.materialize(Rvalue::Ref(mutability, place), ref_ty))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Lower<(Operand, Ty)> {
        let (mut op, mut ty) = self.atom()?;
        loop {
            if self.peek_punct('?') {
                return Err("try-operator");
            }
            if self.peek_punct('.') {
                if self.peek_punct_at(1, '.') {
                    return Err("unsupported-expr"); // range
                }
                if let Some(name) = self.ident_at(1).map(str::to_owned) {
                    if name == "await" {
                        return Err("async");
                    }
                    if self.peek_punct_at(2, '(') {
                        // Method call: opaque extern call, receiver first.
                        self.pos += 3;
                        let mut args = vec![op];
                        self.call_args(&mut args)?;
                        let (o, t) = self.call_extern(args);
                        op = o;
                        ty = t;
                    } else {
                        self.pos += 2;
                        let idx = self.field_idx(&name);
                        let place = self.place_of(op, ty);
                        op = Operand::Copy(place.field(idx));
                        ty = opaque();
                    }
                    continue;
                }
                if let Some(TokenKind::Literal(txt)) = self.kind_at(1) {
                    // Tuple index `x.0`.
                    let Ok(idx) = txt.parse::<u32>() else {
                        return Err("unsupported-expr");
                    };
                    self.pos += 2;
                    let place = self.place_of(op, ty);
                    op = Operand::Copy(place.field(idx));
                    ty = opaque();
                    continue;
                }
                return Err("unsupported-expr");
            }
            if self.peek_punct('[') {
                self.pos += 1;
                let (iop, _) = self.expr()?;
                if !self.eat_punct(']') {
                    return Err("unsupported-expr");
                }
                let elem = match &ty {
                    Ty::Array(e, _) => (**e).clone(),
                    _ => opaque(),
                };
                let place = self.place_of(op, ty);
                let projected = match iop {
                    Operand::Const(Const::Int(n)) if n >= 0 => place.const_index(n as u64),
                    Operand::Copy(p) | Operand::Move(p) if p.is_local() => place.index(p.local),
                    other => {
                        let (o, _) = self.materialize(Rvalue::Use(other), Ty::Int);
                        match o {
                            Operand::Copy(p) => place.index(p.local),
                            _ => return Err("unsupported-expr"),
                        }
                    }
                };
                op = Operand::Copy(projected);
                ty = elem;
                continue;
            }
            break;
        }
        Ok((op, ty))
    }

    fn atom(&mut self) -> Lower<(Operand, Ty)> {
        match self.kind_at(0) {
            Some(TokenKind::Literal(txt)) => {
                let v = parse_int_literal(txt).ok_or("unsupported-literal")?;
                self.pos += 1;
                Ok((Operand::int(v), Ty::Int))
            }
            Some(TokenKind::Ident(w)) => {
                let w = w.clone();
                // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
                if self.peek_punct_at(1, '!')
                    && (self.peek_punct_at(2, '(')
                        || self.peek_punct_at(2, '[')
                        || self.peek_punct_at(2, '{'))
                {
                    return Err("macro");
                }
                match w.as_str() {
                    "true" => {
                        self.pos += 1;
                        return Ok((Operand::constant(Const::Bool(true)), Ty::Bool));
                    }
                    "false" => {
                        self.pos += 1;
                        return Ok((Operand::constant(Const::Bool(false)), Ty::Bool));
                    }
                    "unsafe" if self.peek_punct_at(1, '{') => {
                        // Value-position unsafe block with a single
                        // expression inside: `let x = unsafe { *p };`
                        self.pos += 2;
                        self.unsafe_depth += 1;
                        self.sync_safety();
                        let r = self.expr();
                        self.unsafe_depth -= 1;
                        self.sync_safety();
                        let (o, t) = r?;
                        if !self.eat_punct('}') {
                            return Err("unsupported-expr");
                        }
                        return Ok((o, t));
                    }
                    "if" | "match" | "loop" | "while" | "for" => return Err("control-flow"),
                    "move" => return Err("closure"),
                    _ => {}
                }
                if let Some((local, ty)) = self.lookup(&w) {
                    self.pos += 1;
                    if self.peek_punct('(') {
                        // Indirect call through a binding.
                        self.pos += 1;
                        let mut args = Vec::new();
                        self.call_args(&mut args)?;
                        return Ok(self.call_callee(Callee::Ptr(local), args));
                    }
                    return Ok((Operand::copy(local), ty));
                }
                // Unresolved name: a free function, a path, or a constant.
                self.pos += 1;
                let mut segments = 1usize;
                while self.peek_punct(':') && self.peek_punct_at(1, ':') {
                    self.pos += 2;
                    if self.peek_punct('<') {
                        return Err("generics-expr"); // turbofish
                    }
                    if self.ident_at(0).is_none() {
                        return Err("unsupported-expr");
                    }
                    self.pos += 1;
                    segments += 1;
                }
                if self.peek_punct('(') {
                    self.pos += 1;
                    let mut args = Vec::new();
                    self.call_args(&mut args)?;
                    if segments == 1 {
                        // Possibly a same-file function; resolved (or
                        // rewritten to extern_call) in the post-pass.
                        return Ok(self.call_callee(Callee::Fn(w), args));
                    }
                    return Ok(self.call_extern(args));
                }
                if self.peek_punct('{') {
                    return Err("struct-literal");
                }
                // Opaque path or named constant: materialize as an extern
                // value so data still flows through it.
                Ok(self.call_extern(Vec::new()))
            }
            Some(TokenKind::Punct('(')) => {
                self.pos += 1;
                if self.eat_punct(')') {
                    return Ok((Operand::constant(Const::Unit), Ty::Unit));
                }
                let (first, fty) = self.expr()?;
                if self.eat_punct(')') {
                    return Ok((first, fty));
                }
                if !self.eat_punct(',') {
                    return Err("unsupported-expr");
                }
                // Tuple literal.
                let mut ops = vec![first];
                let mut tys = vec![fty];
                loop {
                    if self.eat_punct(')') {
                        break;
                    }
                    let (o, t) = self.expr()?;
                    ops.push(o);
                    tys.push(t);
                    if self.eat_punct(',') {
                        continue;
                    }
                    if self.eat_punct(')') {
                        break;
                    }
                    return Err("unsupported-expr");
                }
                let ty = Ty::Tuple(tys);
                Ok(self.materialize(Rvalue::Aggregate(ops), ty))
            }
            Some(TokenKind::Punct('[')) => {
                self.pos += 1;
                let mut ops = Vec::new();
                let mut elem = Ty::Int;
                loop {
                    if self.eat_punct(']') {
                        break;
                    }
                    let (o, t) = self.expr()?;
                    if ops.is_empty() {
                        elem = t;
                    }
                    ops.push(o);
                    if self.eat_punct(',') {
                        continue;
                    }
                    if self.eat_punct(']') {
                        break;
                    }
                    return Err("unsupported-expr"); // includes `[x; n]`
                }
                let n = ops.len() as u64;
                let ty = Ty::Array(Box::new(elem), n);
                Ok(self.materialize(Rvalue::Aggregate(ops), ty))
            }
            Some(TokenKind::Punct('|')) => Err("closure"),
            _ => Err("unsupported-expr"),
        }
    }

    /// Parses call arguments; the cursor must be just past the `(`.
    fn call_args(&mut self, args: &mut Vec<Operand>) -> Lower<()> {
        loop {
            if self.eat_punct(')') {
                return Ok(());
            }
            let (o, _) = self.expr()?;
            args.push(o);
            if self.eat_punct(',') {
                continue;
            }
            if self.eat_punct(')') {
                return Ok(());
            }
            return Err("unsupported-expr");
        }
    }

    /// Materializes an rvalue into a fresh temporary.
    pub(crate) fn materialize(&mut self, rv: Rvalue, ty: Ty) -> (Operand, Ty) {
        let t = self.b.temp_assign(ty.clone(), rv);
        (Operand::copy(t), ty)
    }

    /// Emits a call terminator into a fresh opaque temporary.
    fn call_callee(&mut self, callee: Callee, args: Vec<Operand>) -> (Operand, Ty) {
        let dest = self.b.temp(opaque());
        self.b.storage_live(dest);
        let next = self.b.new_block();
        self.b.call(callee, args, dest, Some(next));
        self.b.switch_to(next);
        (Operand::copy(dest), opaque())
    }

    /// An opaque call into non-lowered code.
    pub(crate) fn call_extern(&mut self, args: Vec<Operand>) -> (Operand, Ty) {
        self.call_callee(Callee::Intrinsic(Intrinsic::ExternCall), args)
    }

    /// Turns an operand into a place, materializing constants.
    fn place_of(&mut self, op: Operand, ty: Ty) -> Place {
        match op {
            Operand::Copy(p) | Operand::Move(p) => p,
            Operand::Const(_) => {
                let t = self.b.temp_assign(ty, Rvalue::Use(op));
                Place::from_local(t)
            }
        }
    }
}

/// Parses a Rust integer literal (underscores, radix prefixes, suffixes).
/// Returns `None` for floats, strings, chars, and out-of-range values.
fn parse_int_literal(txt: &str) -> Option<i64> {
    let s: String = txt.chars().filter(|c| *c != '_').collect();
    let (radix, rest) = if let Some(r) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        (16, r)
    } else if let Some(r) = s.strip_prefix("0o").or_else(|| s.strip_prefix("0O")) {
        (8, r)
    } else if let Some(r) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        (2, r)
    } else {
        (10, s.as_str())
    };
    let end = rest
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    let (digits, suffix) = rest.split_at(end);
    if digits.is_empty() {
        return None;
    }
    match suffix {
        "" | "i8" | "i16" | "i32" | "i64" | "i128" | "isize" | "u8" | "u16" | "u32" | "u64"
        | "u128" | "usize" => {}
        _ => return None,
    }
    // Wrap out-of-i64-range u64 values (e.g. hash constants) rather than
    // rejecting whole functions over them.
    u64::from_str_radix(digits, radix).ok().map(|v| v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_literal_forms() {
        assert_eq!(parse_int_literal("42"), Some(42));
        assert_eq!(parse_int_literal("1_000"), Some(1000));
        assert_eq!(parse_int_literal("0xff"), Some(255));
        assert_eq!(parse_int_literal("0o17"), Some(15));
        assert_eq!(parse_int_literal("0b101"), Some(5));
        assert_eq!(parse_int_literal("7u64"), Some(7));
        assert_eq!(parse_int_literal("7_i32"), Some(7));
        assert_eq!(
            parse_int_literal("0xcbf29ce484222325"),
            Some(0xcbf2_9ce4_8422_2325_u64 as i64)
        );
    }

    #[test]
    fn non_int_literals_rejected() {
        for bad in ["2.5", "1e3", "\"str\"", "'c'", "b\"x\"", "1f32", "0x"] {
            assert_eq!(parse_int_literal(bad), None, "{bad}");
        }
    }
}
