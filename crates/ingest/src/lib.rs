//! Real-Rust corpus ingestion: walk → scan → lower → register.
//!
//! The study's methodology is scanning and analyzing *real* Rust trees;
//! this crate is the front door that turns an arbitrary directory of Rust
//! source into a corpus the rest of the workspace can analyze:
//!
//! 1. [`walk`] visits every `.rs` file deterministically (sorted order,
//!    `target/` pruned, symlinks never followed);
//! 2. `rstudy-scan` counts and classifies every unsafe usage per file;
//! 3. [`lower`] turns the straight-line subset of real function bodies into
//!    the textual MIR dialect, skipping unsupported constructs with counted
//!    reasons;
//! 4. [`manifest`] registers the result as one deterministic JSON document
//!    consumable by `check`, the detector suite, `rstudy-serve`, and
//!    `loadgen`.
//!
//! Nothing in the pipeline aborts on messy input: unreadable, non-UTF-8 and
//! empty files, unsupported language constructs, and unwalkable directory
//! entries all degrade into skip-reason counters recorded in the manifest.

#![warn(missing_docs)]
pub mod fnv;
pub mod lower;
pub mod manifest;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use rstudy_scan::{read_rust_source, scan_source, ScanStats};

pub use fnv::content_hash;
pub use lower::{lower_source, FileLowering, LoweredFn};
pub use manifest::{FileEntry, LoweredUnit, Manifest, Summary, SCHEMA};
pub use walk::{walk_rust_files, WalkReport, WalkedFile};

/// Runs the full pipeline over `root`, producing a registered corpus.
///
/// # Errors
///
/// Only a missing/non-directory root is an error; every per-file and
/// per-function problem becomes a counted skip reason in the manifest.
pub fn ingest(root: &Path, name: &str) -> io::Result<Manifest> {
    let walk = walk_rust_files(root)?;
    let mut files = Vec::with_capacity(walk.files.len());
    let mut stats = ScanStats::default();
    let mut file_skips: BTreeMap<String, usize> = BTreeMap::new();
    let mut fn_skips: BTreeMap<String, usize> = BTreeMap::new();
    let mut summary = Summary::default();
    for f in &walk.files {
        let src = match read_rust_source(&f.path) {
            Ok(src) => src,
            Err(skip) => {
                *file_skips.entry(skip.key().to_owned()).or_insert(0) += 1;
                summary.files_skipped += 1;
                continue;
            }
        };
        let usages = scan_source(&src);
        stats.merge(&ScanStats::from_usages(&usages));
        let lowering = lower_source(&src);
        summary.files_scanned += 1;
        summary.unsafe_usages += usages.len();
        summary.fns_lowered += lowering.functions.len();
        for (reason, n) in &lowering.skipped {
            summary.fns_skipped += n;
            *fn_skips.entry(reason.clone()).or_insert(0) += n;
        }
        let lowered = match (lowering.program, lowering.entry) {
            (Some(program), Some(entry)) => Some(LoweredUnit {
                entry,
                functions: lowering.functions,
                program,
            }),
            _ => None,
        };
        files.push(FileEntry {
            path: f.rel.clone(),
            bytes: src.len() as u64,
            hash: content_hash(src.as_bytes()),
            unsafe_usages: usages.len(),
            lowered,
            fn_skips: lowering.skipped,
        });
    }
    Ok(Manifest {
        schema: SCHEMA.to_owned(),
        name: name.to_owned(),
        root: root.display().to_string(),
        summary,
        walk_skips: walk.skipped,
        file_skips,
        fn_skips,
        stats,
        files,
    })
}

/// Derives a corpus name from the root directory (`corpus` as fallback).
pub fn default_corpus_name(root: &Path) -> String {
    root.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .filter(|n| !n.is_empty() && n != "." && n != "..")
        .unwrap_or_else(|| "corpus".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("rstudy-ingest-lib-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingests_a_small_tree() {
        let dir = fixture("small");
        std::fs::write(
            dir.join("a.rs"),
            "fn double(x: i32) -> i32 { x * 2 }\n\
             fn uses_unsafe(p: *mut i32) { unsafe { *p = 1; } }\n",
        )
        .unwrap();
        std::fs::write(dir.join("b.rs"), "fn looped() { loop {} }\n").unwrap();
        std::fs::write(dir.join("empty.rs"), "").unwrap();
        let m = ingest(&dir, "small").unwrap();
        assert_eq!(m.summary.files_scanned, 2);
        assert_eq!(m.summary.files_skipped, 1);
        assert_eq!(m.file_skips.get("empty"), Some(&1));
        assert_eq!(m.summary.unsafe_usages, 1);
        assert_eq!(m.summary.fns_lowered, 2);
        assert_eq!(m.fn_skips.get("control-flow"), Some(&1));
        assert_eq!(m.files.len(), 2);
        assert!(m.files[0].hash.starts_with("fnv1a64:"));
    }

    #[test]
    fn ingest_is_deterministic() {
        let dir = fixture("deterministic");
        std::fs::write(dir.join("x.rs"), "fn f() { let a = 1; let _ = a; }").unwrap();
        std::fs::write(dir.join("y.rs"), "fn g(n: u8) -> u8 { n + 1 }").unwrap();
        let one = ingest(&dir, "d").unwrap();
        let two = ingest(&dir, "d").unwrap();
        assert_eq!(one.to_json(), two.to_json());
    }

    #[test]
    fn lowered_programs_parse_and_validate() {
        let dir = fixture("valid");
        std::fs::write(
            dir.join("m.rs"),
            "fn a(x: u32) -> u32 { let y = x + 1; y }\n\
             fn b() -> u32 { a(7) }\n",
        )
        .unwrap();
        let m = ingest(&dir, "valid").unwrap();
        let mut seen = 0;
        for (_, unit) in m.lowered_units() {
            let p = rstudy_mir::parse::parse_program(&unit.program).unwrap();
            assert!(rstudy_mir::validate::validate_program(&p).is_ok());
            assert_eq!(p.entry(), unit.entry);
            seen += 1;
        }
        assert_eq!(seen, 1);
    }

    #[test]
    fn default_names() {
        assert_eq!(default_corpus_name(Path::new("/tmp/mytree")), "mytree");
        assert_eq!(default_corpus_name(Path::new("/")), "corpus");
    }
}
