//! FNV-1a content hashing for manifest entries.
//!
//! Manifests record a content hash per ingested file so consumers can tell
//! whether a tree drifted since ingestion without re-reading it. FNV-1a is
//! used (as in the service cache) because it is tiny, dependency-free, and
//! deterministic across platforms — the manifest needs a fingerprint, not
//! cryptographic strength.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The manifest encoding of a content hash: `fnv1a64:<16 hex digits>`.
pub fn content_hash(bytes: &[u8]) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_string_shape() {
        let h = content_hash(b"fn main() {}");
        assert!(h.starts_with("fnv1a64:"));
        assert_eq!(h.len(), "fnv1a64:".len() + 16);
    }

    #[test]
    fn deterministic() {
        assert_eq!(content_hash(b"xyz"), content_hash(b"xyz"));
        assert_ne!(content_hash(b"xyz"), content_hash(b"xyzq"));
    }
}
