//! Deterministic directory walking.
//!
//! The walker visits every `.rs` file under a root in a stable order (the
//! relative path, byte-wise), so two ingest runs over the same tree produce
//! byte-identical manifests. Real trees are messy; everything that cannot be
//! walked becomes a counted skip reason instead of an error:
//!
//! * `target` directories (build output) are pruned, counted as `target-dir`;
//! * hidden directories (`.git`, `.cargo`, ...) are pruned as `hidden-dir`;
//! * symlinks are never followed (cycle safety), counted as `symlink`;
//! * unreadable directories are counted as `unreadable-dir`.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One `.rs` file found by the walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkedFile {
    /// Absolute (or root-relative, if the root was relative) path on disk.
    pub path: PathBuf,
    /// Path relative to the walk root, always `/`-separated.
    pub rel: String,
}

/// The result of walking a tree: files in sorted order plus skip counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalkReport {
    /// Every `.rs` file, sorted by relative path.
    pub files: Vec<WalkedFile>,
    /// Counted reasons for everything the walk refused to descend into.
    pub skipped: BTreeMap<String, usize>,
}

impl WalkReport {
    fn skip(&mut self, reason: &str) {
        *self.skipped.entry(reason.to_owned()).or_insert(0) += 1;
    }
}

/// Walks `root` for Rust sources.
///
/// # Errors
///
/// Only a missing or non-directory *root* is an error; everything below it
/// degrades into [`WalkReport::skipped`] counters.
pub fn walk_rust_files(root: &Path) -> io::Result<WalkReport> {
    let meta = std::fs::metadata(root)?;
    if !meta.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{} is not a directory", root.display()),
        ));
    }
    let mut report = WalkReport::default();
    walk_dir(root, root, &mut report);
    report.files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(report)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

fn walk_dir(root: &Path, dir: &Path, report: &mut WalkReport) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => {
            report.skip("unreadable-dir");
            return;
        }
    };
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries.flatten() {
        children.push(entry.path());
    }
    // Sort within the directory so recursion order (and therefore skip
    // counting) is stable even though the final file list is re-sorted.
    children.sort();
    for path in children {
        let Ok(meta) = path.symlink_metadata() else {
            report.skip("unreadable-dir");
            continue;
        };
        if meta.file_type().is_symlink() {
            report.skip("symlink");
            continue;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if meta.is_dir() {
            if name == "target" {
                report.skip("target-dir");
            } else if name.starts_with('.') {
                report.skip("hidden-dir");
            } else {
                walk_dir(root, &path, report);
            }
            continue;
        }
        if meta.is_file()
            && std::path::Path::new(&name)
                .extension()
                .is_some_and(|e| e == "rs")
        {
            report.files.push(WalkedFile {
                rel: rel_path(root, &path),
                path,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("rstudy-ingest-walk-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn finds_rs_files_in_sorted_order() {
        let dir = scratch("sorted");
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("zeta.rs"), "fn z() {}").unwrap();
        std::fs::write(dir.join("alpha.rs"), "fn a() {}").unwrap();
        std::fs::write(dir.join("sub/mid.rs"), "fn m() {}").unwrap();
        std::fs::write(dir.join("notes.txt"), "not rust").unwrap();
        let report = walk_rust_files(&dir).unwrap();
        let rels: Vec<&str> = report.files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(rels, vec!["alpha.rs", "sub/mid.rs", "zeta.rs"]);
    }

    #[test]
    fn prunes_target_and_hidden_dirs() {
        let dir = scratch("pruned");
        std::fs::create_dir_all(dir.join("target/debug")).unwrap();
        std::fs::create_dir_all(dir.join(".git")).unwrap();
        std::fs::write(dir.join("target/debug/gen.rs"), "fn g() {}").unwrap();
        std::fs::write(dir.join(".git/hook.rs"), "fn h() {}").unwrap();
        std::fs::write(dir.join("keep.rs"), "fn k() {}").unwrap();
        let report = walk_rust_files(&dir).unwrap();
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.skipped.get("target-dir"), Some(&1));
        assert_eq!(report.skipped.get("hidden-dir"), Some(&1));
    }

    #[cfg(unix)]
    #[test]
    fn symlinks_are_counted_not_followed() {
        let dir = scratch("symlinks");
        std::fs::write(dir.join("real.rs"), "fn r() {}").unwrap();
        std::os::unix::fs::symlink(&dir, dir.join("loop")).unwrap();
        let report = walk_rust_files(&dir).unwrap();
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.skipped.get("symlink"), Some(&1));
    }

    #[test]
    fn missing_root_is_an_error() {
        assert!(walk_rust_files(Path::new("/nonexistent/ingest/root")).is_err());
    }

    #[test]
    fn walk_is_deterministic() {
        let dir = scratch("determinism");
        for n in ["b.rs", "a.rs", "c.rs"] {
            std::fs::write(dir.join(n), "fn f() {}").unwrap();
        }
        let one = walk_rust_files(&dir).unwrap();
        let two = walk_rust_files(&dir).unwrap();
        assert_eq!(one, two);
    }
}
