//! The corpus manifest: the registered, serialized product of an ingest run.
//!
//! A manifest is a single deterministic JSON document: file list in sorted
//! order, per-file content hashes and unsafe counts, lowered MIR programs,
//! aggregate Table-1/Table-4-style scan statistics, and the full skip-reason
//! taxonomy (walk-, file-, and function-level). Ingesting the same tree
//! twice yields byte-identical manifests, so manifests can be diffed,
//! cached, and committed as artifacts.
//!
//! Consumers: `rstudy check --manifest` analyzes every lowered program,
//! `rstudy-serve` serves entries by path, and `loadgen` builds request mixes
//! from them.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use rstudy_scan::ScanStats;
use serde::{Deserialize, Serialize};

use crate::lower::LoweredFn;

/// Schema tag carried by every manifest.
pub const SCHEMA: &str = "rstudy-ingest/v1";

/// Headline counts of an ingest run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// `.rs` files scanned successfully.
    pub files_scanned: usize,
    /// `.rs` files skipped (unreadable, non-UTF-8, empty).
    pub files_skipped: usize,
    /// Total unsafe usages across all scanned files.
    pub unsafe_usages: usize,
    /// Function bodies lowered into MIR.
    pub fns_lowered: usize,
    /// Function bodies skipped by the lowerer.
    pub fns_skipped: usize,
}

/// One file's lowered program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredUnit {
    /// Entry function name of the program.
    pub entry: String,
    /// Lowered functions in source order.
    pub functions: Vec<LoweredFn>,
    /// The program in the textual MIR dialect.
    pub program: String,
}

/// One scanned file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Root-relative path, `/`-separated.
    pub path: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Content hash (`fnv1a64:<hex>`).
    pub hash: String,
    /// Unsafe usages found in this file.
    pub unsafe_usages: usize,
    /// Lowered MIR program, when at least one function lowered.
    pub lowered: Option<LoweredUnit>,
    /// Per-reason counts of functions the lowerer skipped in this file.
    pub fn_skips: BTreeMap<String, usize>,
}

/// A registered corpus: the output of `rstudy ingest`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Corpus name (defaults to the root directory's name).
    pub name: String,
    /// The root the walk started from, as given.
    pub root: String,
    /// Headline counts.
    pub summary: Summary,
    /// Why the walker pruned things (`target-dir`, `symlink`, ...).
    pub walk_skips: BTreeMap<String, usize>,
    /// Why whole files were skipped (`non-utf8`, `empty`, `unreadable`).
    pub file_skips: BTreeMap<String, usize>,
    /// Why functions were not lowered (`control-flow`, `generics`, ...).
    pub fn_skips: BTreeMap<String, usize>,
    /// Aggregate unsafe-usage statistics over all scanned files.
    pub stats: ScanStats,
    /// Every scanned file, sorted by path.
    pub files: Vec<FileEntry>,
}

impl Manifest {
    /// Serializes deterministically (pretty JSON, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("manifest serializes");
        s.push('\n');
        s
    }

    /// Parses a manifest, checking the schema tag.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse or schema mismatch.
    pub fn from_json(src: &str) -> Result<Manifest, String> {
        let m: Manifest = serde_json::from_str(src).map_err(|e| e.to_string())?;
        if m.schema != SCHEMA {
            return Err(format!(
                "unsupported manifest schema `{}` (want `{SCHEMA}`)",
                m.schema
            ));
        }
        Ok(m)
    }

    /// Writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a manifest from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; parse failures become `InvalidData`.
    pub fn load(path: &Path) -> io::Result<Manifest> {
        let src = std::fs::read_to_string(path)?;
        Manifest::from_json(&src).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Iterates `(path, unit)` over every file that lowered a program.
    pub fn lowered_units(&self) -> impl Iterator<Item = (&str, &LoweredUnit)> {
        self.files
            .iter()
            .filter_map(|f| f.lowered.as_ref().map(|u| (f.path.as_str(), u)))
    }

    /// The lowered program for one file path, if any.
    pub fn find_program(&self, path: &str) -> Option<&LoweredUnit> {
        self.files
            .iter()
            .find(|f| f.path == path)
            .and_then(|f| f.lowered.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Manifest {
        Manifest {
            schema: SCHEMA.to_owned(),
            name: "tiny".to_owned(),
            root: "fixtures/tiny".to_owned(),
            summary: Summary {
                files_scanned: 1,
                files_skipped: 0,
                unsafe_usages: 2,
                fns_lowered: 1,
                fns_skipped: 1,
            },
            walk_skips: BTreeMap::new(),
            file_skips: BTreeMap::new(),
            fn_skips: BTreeMap::from([("control-flow".to_owned(), 1)]),
            stats: ScanStats::default(),
            files: vec![FileEntry {
                path: "lib.rs".to_owned(),
                bytes: 42,
                hash: "fnv1a64:0000000000000042".to_owned(),
                unsafe_usages: 2,
                lowered: Some(LoweredUnit {
                    entry: "f".to_owned(),
                    functions: vec![crate::lower::LoweredFn {
                        name: "f".to_owned(),
                        line: 1,
                    }],
                    program: "fn f() {\n  bb0: {\n    return;\n  }\n}\n".to_owned(),
                }),
                fn_skips: BTreeMap::from([("control-flow".to_owned(), 1)]),
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let m = tiny();
        let text = m.to_json();
        let back = Manifest::from_json(&text).unwrap();
        assert_eq!(m, back);
        // Determinism: serialize → parse → serialize is a fixpoint.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut m = tiny();
        m.schema = "rstudy-ingest/v0".to_owned();
        let err = Manifest::from_json(&m.to_json()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("rstudy-ingest-manifest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = tiny();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
    }

    #[test]
    fn lowered_units_and_lookup() {
        let m = tiny();
        let units: Vec<&str> = m.lowered_units().map(|(p, _)| p).collect();
        assert_eq!(units, vec!["lib.rs"]);
        assert!(m.find_program("lib.rs").is_some());
        assert!(m.find_program("missing.rs").is_none());
    }
}
