//! Self-host ingestion: the pipeline pointed at this workspace's own
//! `crates/` tree, which is real Rust containing real `unsafe` (epoll,
//! eventfd, and signal bindings in the service crate).

use std::path::PathBuf;

use rstudy_ingest::ingest;

fn crates_root() -> PathBuf {
    // crates/ingest -> crates/
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf()
}

#[test]
fn self_host_meets_corpus_floor() {
    let m = ingest(&crates_root(), "self").unwrap();
    println!(
        "scanned={} skipped={} usages={} lowered={} fn_skips={:?}",
        m.summary.files_scanned,
        m.summary.files_skipped,
        m.summary.unsafe_usages,
        m.summary.fns_lowered,
        m.fn_skips
    );
    assert!(
        m.summary.files_scanned >= 100,
        "want >= 100 files, got {}",
        m.summary.files_scanned
    );
    assert!(
        m.summary.fns_lowered >= 50,
        "want >= 50 lowered fns, got {}",
        m.summary.fns_lowered
    );
    assert!(m.summary.unsafe_usages > 0);
}

#[test]
fn self_host_programs_all_validate() {
    let m = ingest(&crates_root(), "self").unwrap();
    for (path, unit) in m.lowered_units() {
        let p = rstudy_mir::parse::parse_program(&unit.program)
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        rstudy_mir::validate::validate_program(&p).unwrap_or_else(|e| panic!("{path}: {e:?}"));
    }
}

#[test]
fn self_host_is_deterministic() {
    let root = crates_root();
    let one = ingest(&root, "self").unwrap();
    let two = ingest(&root, "self").unwrap();
    assert_eq!(one.to_json(), two.to_json());
}
