//! Source locations and safety context attached to every IR node.
//!
//! The study's Table 2 classifies each memory bug by whether its *cause* and
//! *effect* sit in safe or unsafe code; carrying [`Safety`] on every statement
//! is what makes that classification mechanical for our detectors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A line-oriented source span.
///
/// Spans in this IR are deliberately coarse: a (line, column) pair is enough
/// to report diagnostics against the textual MIR corpora we ship, and to give
/// detectors a stable ordering of program points.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span {
    /// 1-based line number; 0 means "synthetic" (built programmatically).
    pub line: u32,
    /// 1-based column number; 0 means "synthetic".
    pub col: u32,
}

impl Span {
    /// A span for IR constructed programmatically rather than parsed.
    pub const SYNTHETIC: Span = Span { line: 0, col: 0 };

    /// Creates a span at the given 1-based line and column.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// Returns `true` if this span was synthesized rather than parsed.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// Whether a statement executes inside an `unsafe` region.
///
/// Mirrors the safe/unsafe distinction the paper tracks for every bug's cause
/// and effect sites.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Safety {
    /// Ordinary safe code, checked by the (modelled) compiler.
    #[default]
    Safe,
    /// Code inside an `unsafe` block or an `unsafe fn`.
    Unsafe,
}

impl Safety {
    /// Returns `true` for [`Safety::Unsafe`].
    pub fn is_unsafe(self) -> bool {
        matches!(self, Safety::Unsafe)
    }
}

impl fmt::Display for Safety {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Safety::Safe => f.write_str("safe"),
            Safety::Unsafe => f.write_str("unsafe"),
        }
    }
}

/// Location + safety context attached to every statement and terminator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SourceInfo {
    /// Where the node came from.
    pub span: Span,
    /// Whether the node sits in an unsafe region.
    pub safety: Safety,
}

impl SourceInfo {
    /// Synthetic, safe source info — the default for built IR.
    pub const SAFE: SourceInfo = SourceInfo {
        span: Span::SYNTHETIC,
        safety: Safety::Safe,
    };

    /// Synthetic, unsafe source info.
    pub const UNSAFE: SourceInfo = SourceInfo {
        span: Span::SYNTHETIC,
        safety: Safety::Unsafe,
    };

    /// Creates source info with the given span and safety.
    pub fn new(span: Span, safety: Safety) -> SourceInfo {
        SourceInfo { span, safety }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_span_displays_marker() {
        assert_eq!(Span::SYNTHETIC.to_string(), "<synthetic>");
        assert!(Span::SYNTHETIC.is_synthetic());
    }

    #[test]
    fn real_span_displays_line_col() {
        let s = Span::new(3, 14);
        assert_eq!(s.to_string(), "3:14");
        assert!(!s.is_synthetic());
    }

    #[test]
    fn safety_default_is_safe() {
        assert_eq!(Safety::default(), Safety::Safe);
        assert!(!Safety::Safe.is_unsafe());
        assert!(Safety::Unsafe.is_unsafe());
    }

    #[test]
    fn source_info_constants_match_safety() {
        assert_eq!(SourceInfo::SAFE.safety, Safety::Safe);
        assert_eq!(SourceInfo::UNSAFE.safety, Safety::Unsafe);
    }

    #[test]
    fn spans_order_by_line_then_col() {
        assert!(Span::new(1, 9) < Span::new(2, 1));
        assert!(Span::new(2, 1) < Span::new(2, 2));
    }
}
