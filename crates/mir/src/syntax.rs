//! Core IR syntax: locals, places, operands, rvalues, statements,
//! terminators, basic blocks, and function bodies.
//!
//! The shape intentionally mirrors rustc's MIR. Each function body is a list
//! of basic blocks over a flat list of locals; `_0` is the return place and
//! `_1..=_argc` are the arguments.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intrinsics::Intrinsic;
use crate::source::SourceInfo;
use crate::ty::Ty;

/// Index of a local variable within a [`Body`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Local(pub u32);

impl Local {
    /// The return place `_0`.
    pub const RETURN: Local = Local(0);

    /// The position of this local in the body's `locals` vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_{}", self.0)
    }
}

/// Index of a basic block within a [`Body`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BasicBlock(pub u32);

impl BasicBlock {
    /// The entry block `bb0`.
    pub const ENTRY: BasicBlock = BasicBlock(0);

    /// The position of this block in the body's `blocks` vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Whether a binding or pointer permits mutation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Mutability {
    /// Immutable (`&T`, `*const T`).
    #[default]
    Not,
    /// Mutable (`&mut T`, `*mut T`).
    Mut,
}

impl Mutability {
    /// Returns `true` for [`Mutability::Mut`].
    pub fn is_mut(self) -> bool {
        matches!(self, Mutability::Mut)
    }
}

/// Declaration of one local variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LocalDecl {
    /// Human-readable name, if the local corresponds to a source variable.
    pub name: Option<String>,
    /// Declared type.
    pub ty: Ty,
}

impl LocalDecl {
    /// A named local of the given type.
    pub fn named(name: impl Into<String>, ty: Ty) -> LocalDecl {
        LocalDecl {
            name: Some(name.into()),
            ty,
        }
    }

    /// An anonymous temporary of the given type.
    pub fn temp(ty: Ty) -> LocalDecl {
        LocalDecl { name: None, ty }
    }
}

/// One projection step applied to a base local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProjElem {
    /// `*place` — dereference a reference or raw pointer.
    Deref,
    /// `place.N` — select tuple/struct field `N`.
    Field(u32),
    /// `place[local]` — index by a runtime value.
    Index(Local),
    /// `place[N]` — index by a compile-time constant.
    ConstIndex(u64),
}

/// A memory location: a base local plus a projection path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Place {
    /// The base variable.
    pub local: Local,
    /// Projections applied left to right.
    pub projection: Vec<ProjElem>,
}

impl Place {
    /// The return place `_0` with no projections.
    pub const RETURN: Place = Place {
        local: Local::RETURN,
        projection: Vec::new(),
    };

    /// A place that is just a bare local.
    pub fn from_local(local: Local) -> Place {
        Place {
            local,
            projection: Vec::new(),
        }
    }

    /// `*self` — this place behind one dereference.
    pub fn deref(mut self) -> Place {
        self.projection.push(ProjElem::Deref);
        self
    }

    /// `self.field` — project a field.
    pub fn field(mut self, f: u32) -> Place {
        self.projection.push(ProjElem::Field(f));
        self
    }

    /// `self[idx]` — index by a local.
    pub fn index(mut self, idx: Local) -> Place {
        self.projection.push(ProjElem::Index(idx));
        self
    }

    /// `self[n]` — index by a constant.
    pub fn const_index(mut self, n: u64) -> Place {
        self.projection.push(ProjElem::ConstIndex(n));
        self
    }

    /// Returns `true` if this place is a bare local with no projections.
    pub fn is_local(&self) -> bool {
        self.projection.is_empty()
    }

    /// Returns `true` if any projection step dereferences a pointer.
    pub fn has_deref(&self) -> bool {
        self.projection.contains(&ProjElem::Deref)
    }

    /// Returns `true` if any projection step indexes into an array.
    pub fn has_index(&self) -> bool {
        self.projection
            .iter()
            .any(|p| matches!(p, ProjElem::Index(_) | ProjElem::ConstIndex(_)))
    }
}

impl From<Local> for Place {
    fn from(local: Local) -> Place {
        Place::from_local(local)
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for elem in &self.projection {
            if matches!(elem, ProjElem::Deref) {
                f.write_str("(*")?;
            }
        }
        write!(f, "{}", self.local)?;
        for elem in &self.projection {
            match elem {
                ProjElem::Deref => f.write_str(")")?,
                ProjElem::Field(n) => write!(f, ".{n}")?,
                ProjElem::Index(l) => write!(f, "[{l}]")?,
                ProjElem::ConstIndex(n) => write!(f, "[{n}]")?,
            }
        }
        Ok(())
    }
}

/// A compile-time constant value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Const {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// The name of a function, used for indirect calls / fn pointers.
    Fn(String),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Unit => f.write_str("()"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Int(i) => write!(f, "{i}"),
            Const::Fn(name) => write!(f, "fn {name}"),
        }
    }
}

/// A value read by a statement: a copy, a move, or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read the place, leaving it initialized.
    Copy(Place),
    /// Read the place and end its initialization (ownership moves out).
    Move(Place),
    /// A literal.
    Const(Const),
}

impl Operand {
    /// Copy of a bare local or place.
    pub fn copy(place: impl Into<Place>) -> Operand {
        Operand::Copy(place.into())
    }

    /// Move out of a bare local or place.
    pub fn mov(place: impl Into<Place>) -> Operand {
        Operand::Move(place.into())
    }

    /// A constant operand.
    pub fn constant(c: Const) -> Operand {
        Operand::Const(c)
    }

    /// Integer-literal shorthand.
    pub fn int(i: i64) -> Operand {
        Operand::Const(Const::Int(i))
    }

    /// The place read by this operand, if any.
    pub fn place(&self) -> Option<&Place> {
        match self {
            Operand::Copy(p) | Operand::Move(p) => Some(p),
            Operand::Const(_) => None,
        }
    }

    /// Returns `true` if this operand moves ownership out of its place.
    pub fn is_move(&self) -> bool {
        matches!(self, Operand::Move(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Copy(p) => write!(f, "{p}"),
            Operand::Move(p) => write!(f, "move {p}"),
            Operand::Const(c) => write!(f, "const {c}"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&` (bitwise and logical and — the IR has one integer type)
    And,
    /// `|`
    Or,
    /// Pointer offset: `ptr + n` elements (an unsafe operation in Rust).
    Offset,
}

impl BinOp {
    /// The surface token used by the textual format.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Offset => "offset",
        }
    }

    /// Returns `true` for comparison operators producing `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Logical / bitwise negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rvalue {
    /// Read an operand.
    Use(Operand),
    /// Take a borrow of a place: `&place` / `&mut place`.
    Ref(Mutability, Place),
    /// Take the raw address of a place: `&raw const place` / `&raw mut place`.
    AddrOf(Mutability, Place),
    /// Apply a binary operator.
    BinaryOp(BinOp, Operand, Operand),
    /// Apply a unary operator.
    UnaryOp(UnOp, Operand),
    /// Cast an operand to a type (e.g. `&T as *const T`).
    Cast(Operand, Ty),
    /// The length of an array place.
    Len(Place),
    /// Build an aggregate (tuple/array) from element operands.
    Aggregate(Vec<Operand>),
}

impl Rvalue {
    /// All operands read by this rvalue.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Rvalue::Use(op) | Rvalue::UnaryOp(_, op) | Rvalue::Cast(op, _) => vec![op],
            Rvalue::BinaryOp(_, a, b) => vec![a, b],
            Rvalue::Ref(..) | Rvalue::AddrOf(..) | Rvalue::Len(_) => vec![],
            Rvalue::Aggregate(ops) => ops.iter().collect(),
        }
    }

    /// The place borrowed or addressed, if this rvalue creates a pointer.
    pub fn pointer_base(&self) -> Option<&Place> {
        match self {
            Rvalue::Ref(_, p) | Rvalue::AddrOf(_, p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Use(op) => write!(f, "{op}"),
            Rvalue::Ref(Mutability::Not, p) => write!(f, "&{p}"),
            Rvalue::Ref(Mutability::Mut, p) => write!(f, "&mut {p}"),
            Rvalue::AddrOf(Mutability::Not, p) => write!(f, "&raw const {p}"),
            Rvalue::AddrOf(Mutability::Mut, p) => write!(f, "&raw mut {p}"),
            Rvalue::BinaryOp(op, a, b) => write!(f, "{a} {} {b}", op.token()),
            Rvalue::UnaryOp(UnOp::Not, a) => write!(f, "!{a}"),
            Rvalue::UnaryOp(UnOp::Neg, a) => write!(f, "-{a}"),
            Rvalue::Cast(op, ty) => write!(f, "{op} as {ty}"),
            Rvalue::Len(p) => write!(f, "len({p})"),
            Rvalue::Aggregate(ops) => {
                f.write_str("[")?;
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{op}")?;
                }
                f.write_str("]")
            }
        }
    }
}

/// The operation performed by a [`Statement`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatementKind {
    /// `place = rvalue`.
    Assign(Place, Rvalue),
    /// Begin the storage (and lifetime) of a local.
    StorageLive(Local),
    /// End the storage of a local; its value is dropped/invalidated.
    StorageDead(Local),
    /// No operation (placeholder produced by transformations).
    Nop,
}

/// One non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Statement {
    /// The operation.
    pub kind: StatementKind,
    /// Location and safety context.
    pub source_info: SourceInfo,
}

impl Statement {
    /// A statement with synthetic, safe source info.
    pub fn new(kind: StatementKind) -> Statement {
        Statement {
            kind,
            source_info: SourceInfo::SAFE,
        }
    }

    /// A statement marked as sitting inside an unsafe region.
    pub fn new_unsafe(kind: StatementKind) -> Statement {
        Statement {
            kind,
            source_info: SourceInfo::UNSAFE,
        }
    }
}

/// The function (or intrinsic) invoked by a call terminator.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// A user function in the enclosing [`crate::Program`], by name.
    Fn(String),
    /// A modelled library/synchronization intrinsic.
    Intrinsic(Intrinsic),
    /// An indirect call through a function-valued local.
    Ptr(Local),
}

impl fmt::Display for Callee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Callee::Fn(name) => f.write_str(name),
            Callee::Intrinsic(i) => write!(f, "{i}"),
            Callee::Ptr(l) => write!(f, "(*{l})"),
        }
    }
}

/// How a [`BasicBlockData`] transfers control.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminatorKind {
    /// Unconditional jump.
    Goto {
        /// Jump target.
        target: BasicBlock,
    },
    /// Multi-way branch on an integer/boolean discriminant.
    SwitchInt {
        /// The value switched on.
        discr: Operand,
        /// `(value, target)` arms.
        targets: Vec<(i64, BasicBlock)>,
        /// Fallthrough target when no arm matches.
        otherwise: BasicBlock,
    },
    /// Call a function; control resumes at `target` (if `Some`).
    Call {
        /// What is invoked.
        func: Callee,
        /// Argument operands.
        args: Vec<Operand>,
        /// Where the return value is stored.
        destination: Place,
        /// Continuation block; `None` for diverging calls.
        target: Option<BasicBlock>,
    },
    /// Drop the value in a place (runs its destructor; releases guards).
    Drop {
        /// What is dropped.
        place: Place,
        /// Continuation block.
        target: BasicBlock,
    },
    /// Return from the function; the value is in `_0`.
    Return,
    /// Control can never reach here.
    Unreachable,
}

impl TerminatorKind {
    /// All successor blocks, in arm order.
    pub fn successors(&self) -> Vec<BasicBlock> {
        match self {
            TerminatorKind::Goto { target } => vec![*target],
            TerminatorKind::SwitchInt {
                targets, otherwise, ..
            } => {
                let mut out: Vec<BasicBlock> = targets.iter().map(|(_, b)| *b).collect();
                out.push(*otherwise);
                out
            }
            TerminatorKind::Call { target, .. } => target.iter().copied().collect(),
            TerminatorKind::Drop { target, .. } => vec![*target],
            TerminatorKind::Return | TerminatorKind::Unreachable => vec![],
        }
    }
}

/// A block-ending instruction with source info.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Terminator {
    /// The control transfer performed.
    pub kind: TerminatorKind,
    /// Location and safety context.
    pub source_info: SourceInfo,
}

impl Terminator {
    /// A terminator with synthetic, safe source info.
    pub fn new(kind: TerminatorKind) -> Terminator {
        Terminator {
            kind,
            source_info: SourceInfo::SAFE,
        }
    }
}

/// A straight-line sequence of statements ending in a terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasicBlockData {
    /// The block's statements, executed in order.
    pub statements: Vec<Statement>,
    /// The block's terminator. `None` only transiently during construction.
    pub terminator: Option<Terminator>,
}

impl BasicBlockData {
    /// An empty block with no terminator yet.
    pub fn new() -> BasicBlockData {
        BasicBlockData {
            statements: Vec::new(),
            terminator: None,
        }
    }

    /// The terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block is still under construction.
    pub fn terminator(&self) -> &Terminator {
        self.terminator
            .as_ref()
            .expect("basic block has no terminator")
    }
}

impl Default for BasicBlockData {
    fn default() -> Self {
        Self::new()
    }
}

/// A function body: locals plus a CFG of basic blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Body {
    /// The function's name, unique within a [`crate::Program`].
    pub name: String,
    /// Number of leading locals (after `_0`) that are arguments.
    pub arg_count: usize,
    /// All locals; `_0` is the return place.
    pub locals: Vec<LocalDecl>,
    /// All basic blocks; `bb0` is the entry.
    pub blocks: Vec<BasicBlockData>,
    /// Whether the function is declared `unsafe fn`.
    pub is_unsafe_fn: bool,
}

impl Body {
    /// Iterator over all local indices.
    pub fn local_indices(&self) -> impl Iterator<Item = Local> {
        (0..self.locals.len() as u32).map(Local)
    }

    /// Iterator over all block indices.
    pub fn block_indices(&self) -> impl Iterator<Item = BasicBlock> {
        (0..self.blocks.len() as u32).map(BasicBlock)
    }

    /// The declaration of a local.
    ///
    /// # Panics
    ///
    /// Panics if the local is out of range.
    pub fn local_decl(&self, local: Local) -> &LocalDecl {
        &self.locals[local.index()]
    }

    /// The data of a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range.
    pub fn block(&self, bb: BasicBlock) -> &BasicBlockData {
        &self.blocks[bb.index()]
    }

    /// The argument locals `_1..=_argc`.
    pub fn args(&self) -> impl Iterator<Item = Local> {
        (1..=self.arg_count as u32).map(Local)
    }

    /// Returns `true` if the named local is an argument.
    pub fn is_arg(&self, local: Local) -> bool {
        local.0 >= 1 && (local.0 as usize) <= self.arg_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(l: u32) -> Place {
        Place::from_local(Local(l))
    }

    #[test]
    fn place_display_matches_mir_style() {
        assert_eq!(place(3).to_string(), "_3");
        assert_eq!(place(1).deref().to_string(), "(*_1)");
        assert_eq!(place(1).field(2).to_string(), "_1.2");
        assert_eq!(place(1).index(Local(2)).to_string(), "_1[_2]");
        assert_eq!(place(1).const_index(7).to_string(), "_1[7]");
        assert_eq!(place(1).deref().field(0).to_string(), "(*_1).0");
    }

    #[test]
    fn place_predicates() {
        assert!(place(1).is_local());
        assert!(!place(1).deref().is_local());
        assert!(place(1).deref().has_deref());
        assert!(place(1).const_index(0).has_index());
        assert!(!place(1).field(0).has_index());
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::copy(Local(2)).to_string(), "_2");
        assert_eq!(Operand::mov(Local(2)).to_string(), "move _2");
        assert_eq!(Operand::int(5).to_string(), "const 5");
        assert_eq!(
            Operand::constant(Const::Fn("f".into())).to_string(),
            "const fn f"
        );
    }

    #[test]
    fn rvalue_display() {
        let rv = Rvalue::BinaryOp(BinOp::Add, Operand::copy(Local(1)), Operand::int(1));
        assert_eq!(rv.to_string(), "_1 + const 1");
        assert_eq!(
            Rvalue::Ref(Mutability::Mut, place(4)).to_string(),
            "&mut _4"
        );
        assert_eq!(
            Rvalue::AddrOf(Mutability::Not, place(4)).to_string(),
            "&raw const _4"
        );
        assert_eq!(
            Rvalue::Cast(Operand::copy(Local(1)), Ty::mut_ptr(Ty::Int)).to_string(),
            "_1 as *mut int"
        );
        assert_eq!(Rvalue::Len(place(2)).to_string(), "len(_2)");
    }

    #[test]
    fn successors_cover_all_terminators() {
        let goto = TerminatorKind::Goto {
            target: BasicBlock(1),
        };
        assert_eq!(goto.successors(), vec![BasicBlock(1)]);

        let sw = TerminatorKind::SwitchInt {
            discr: Operand::int(0),
            targets: vec![(0, BasicBlock(1)), (1, BasicBlock(2))],
            otherwise: BasicBlock(3),
        };
        assert_eq!(
            sw.successors(),
            vec![BasicBlock(1), BasicBlock(2), BasicBlock(3)]
        );

        let call = TerminatorKind::Call {
            func: Callee::Fn("f".into()),
            args: vec![],
            destination: Place::RETURN,
            target: Some(BasicBlock(4)),
        };
        assert_eq!(call.successors(), vec![BasicBlock(4)]);
        assert!(TerminatorKind::Return.successors().is_empty());
        assert!(TerminatorKind::Unreachable.successors().is_empty());
    }

    #[test]
    fn rvalue_operands_are_enumerated() {
        let rv = Rvalue::BinaryOp(BinOp::Mul, Operand::copy(Local(1)), Operand::copy(Local(2)));
        assert_eq!(rv.operands().len(), 2);
        let agg = Rvalue::Aggregate(vec![Operand::int(1), Operand::int(2), Operand::int(3)]);
        assert_eq!(agg.operands().len(), 3);
        assert!(Rvalue::Ref(Mutability::Not, place(1)).operands().is_empty());
    }

    #[test]
    fn body_arg_helpers() {
        let body = Body {
            name: "f".into(),
            arg_count: 2,
            locals: vec![
                LocalDecl::temp(Ty::Unit),
                LocalDecl::named("a", Ty::Int),
                LocalDecl::named("b", Ty::Int),
                LocalDecl::temp(Ty::Int),
            ],
            blocks: vec![],
            is_unsafe_fn: false,
        };
        assert!(body.is_arg(Local(1)));
        assert!(body.is_arg(Local(2)));
        assert!(!body.is_arg(Local(0)));
        assert!(!body.is_arg(Local(3)));
        assert_eq!(body.args().collect::<Vec<_>>(), vec![Local(1), Local(2)]);
    }
}
