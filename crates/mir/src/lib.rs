//! A self-contained MIR-style intermediate representation.
//!
//! This crate is the substrate for the PLDI 2020 Rust-study reproduction: a
//! control-flow-graph IR closely modelled on rustc's MIR, exposing exactly the
//! facts the paper's detectors consume — storage liveness (`StorageLive` /
//! `StorageDead`), moves, drops, borrows, raw-pointer operations, calls, and
//! an `unsafe` marker on every statement.
//!
//! # Quick start
//!
//! Build a tiny function and print it:
//!
//! ```
//! use rstudy_mir::build::BodyBuilder;
//! use rstudy_mir::{Ty, Operand, Rvalue, Const};
//!
//! let mut b = BodyBuilder::new("answer", 0, Ty::Int);
//! let tmp = b.local("tmp", Ty::Int);
//! b.storage_live(tmp);
//! b.assign(tmp, Rvalue::Use(Operand::constant(Const::Int(42))));
//! b.assign_place(rstudy_mir::Place::RETURN, Rvalue::Use(Operand::copy(tmp)));
//! b.storage_dead(tmp);
//! b.ret();
//! let body = b.finish();
//! assert_eq!(body.blocks.len(), 1);
//! let text = rstudy_mir::pretty::body_to_string(&body);
//! assert!(text.contains("_1 = const 42"));
//! ```
//!
//! The textual format round-trips through [`parse`](crate::parse) and
//! [`pretty`](crate::pretty), so corpora can be stored as plain text.

#![warn(missing_docs)]
pub mod build;
pub mod intrinsics;
pub mod parse;
pub mod pretty;
pub mod program;
pub mod source;
pub mod syntax;
pub mod transform;
pub mod ty;
pub mod validate;
pub mod visit;

pub use intrinsics::Intrinsic;
pub use program::{FnName, Program};
pub use source::{Safety, SourceInfo, Span};
pub use syntax::{
    BasicBlock, BasicBlockData, BinOp, Body, Callee, Const, Local, LocalDecl, Mutability, Operand,
    Place, ProjElem, Rvalue, Statement, StatementKind, Terminator, TerminatorKind, UnOp,
};
pub use ty::Ty;
