//! Pretty-printing of bodies and programs in the textual MIR format.
//!
//! The output is accepted back by [`crate::parse`]; `parse(pretty(x))` is
//! structurally equal to `x` up to source spans (which the parser derives
//! from the new text's line numbers).

use std::fmt::Write as _;

use crate::program::Program;
use crate::syntax::{Body, Statement, StatementKind, Terminator, TerminatorKind};

/// Renders a whole program, entry directive first.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    if program.entry() != "main" {
        let _ = writeln!(out, "entry {};", program.entry());
        out.push('\n');
    }
    let mut first = true;
    for body in program.bodies() {
        if !first {
            out.push('\n');
        }
        first = false;
        out.push_str(&body_to_string(body));
    }
    out
}

/// Renders one function body.
pub fn body_to_string(body: &Body) -> String {
    let mut out = String::new();
    if body.is_unsafe_fn {
        out.push_str("unsafe ");
    }
    let _ = write!(out, "fn {}(", body.name);
    for (i, arg) in body.args().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let decl = body.local_decl(arg);
        match &decl.name {
            Some(name) => {
                let _ = write!(out, "{arg} as {name}: {}", decl.ty);
            }
            None => {
                let _ = write!(out, "{arg}: {}", decl.ty);
            }
        }
    }
    let _ = writeln!(out, ") -> {} {{", body.local_decl(crate::Local::RETURN).ty);

    for local in body.local_indices().skip(1 + body.arg_count) {
        let decl = body.local_decl(local);
        match &decl.name {
            Some(name) => {
                let _ = writeln!(out, "    let {local} as {name}: {};", decl.ty);
            }
            None => {
                let _ = writeln!(out, "    let {local}: {};", decl.ty);
            }
        }
    }

    for bb in body.block_indices() {
        let data = body.block(bb);
        out.push('\n');
        let _ = writeln!(out, "    {bb}: {{");
        for stmt in &data.statements {
            let _ = writeln!(out, "        {};", statement_to_string(stmt));
        }
        if let Some(term) = &data.terminator {
            let _ = writeln!(out, "        {};", terminator_to_string(term));
        }
        let _ = writeln!(out, "    }}");
    }
    out.push_str("}\n");
    out
}

/// Renders one statement (no trailing semicolon).
pub fn statement_to_string(stmt: &Statement) -> String {
    let prefix = if stmt.source_info.safety.is_unsafe() {
        "unsafe "
    } else {
        ""
    };
    let body = match &stmt.kind {
        StatementKind::Assign(place, rv) => format!("{place} = {rv}"),
        StatementKind::StorageLive(l) => format!("StorageLive({l})"),
        StatementKind::StorageDead(l) => format!("StorageDead({l})"),
        StatementKind::Nop => "nop".to_owned(),
    };
    format!("{prefix}{body}")
}

/// Renders one terminator (no trailing semicolon).
pub fn terminator_to_string(term: &Terminator) -> String {
    let prefix = if term.source_info.safety.is_unsafe() {
        "unsafe "
    } else {
        ""
    };
    let body = match &term.kind {
        TerminatorKind::Goto { target } => format!("goto -> {target}"),
        TerminatorKind::SwitchInt {
            discr,
            targets,
            otherwise,
        } => {
            let mut s = format!("switchInt({discr}) -> [");
            for (v, bb) in targets {
                let _ = write!(s, "{v}: {bb}, ");
            }
            let _ = write!(s, "otherwise: {otherwise}]");
            s
        }
        TerminatorKind::Call {
            func,
            args,
            destination,
            target,
        } => {
            let mut s = format!("{destination} = call {func}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{a}");
            }
            match target {
                Some(bb) => {
                    let _ = write!(s, ") -> {bb}");
                }
                None => s.push_str(") -> !"),
            }
            s
        }
        TerminatorKind::Drop { place, target } => format!("drop({place}) -> {target}"),
        TerminatorKind::Return => "return".to_owned(),
        TerminatorKind::Unreachable => "unreachable".to_owned(),
    };
    format!("{prefix}{body}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BodyBuilder;
    use crate::syntax::{Callee, Operand, Place, Rvalue};
    use crate::ty::Ty;
    use crate::{Intrinsic, Mutability};

    #[test]
    fn prints_header_locals_and_blocks() {
        let mut b = BodyBuilder::new("add_one", 1, Ty::Int);
        let x = b.arg("x", Ty::Int);
        let t = b.temp(Ty::Int);
        b.storage_live(t);
        b.assign(
            t,
            Rvalue::BinaryOp(crate::BinOp::Add, Operand::copy(x), Operand::int(1)),
        );
        b.assign_place(Place::RETURN, Rvalue::Use(Operand::mov(t)));
        b.storage_dead(t);
        b.ret();
        let s = body_to_string(&b.finish());
        assert!(s.contains("fn add_one(_1 as x: int) -> int {"), "{s}");
        assert!(s.contains("let _2: int;"), "{s}");
        assert!(s.contains("bb0: {"), "{s}");
        assert!(s.contains("_2 = _1 + const 1;"), "{s}");
        assert!(s.contains("_0 = move _2;"), "{s}");
        assert!(s.contains("return;"), "{s}");
    }

    #[test]
    fn prints_unsafe_markers() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let p = b.local("p", Ty::mut_ptr(Ty::Int));
        b.storage_live(p);
        b.in_unsafe(|b| b.assign_place(Place::from_local(p).deref(), Rvalue::Use(Operand::int(3))));
        b.ret();
        let s = body_to_string(&b.finish());
        assert!(s.contains("unsafe (*_1) = const 3;"), "{s}");
    }

    #[test]
    fn prints_calls_and_switches() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let m = b.local("m", Ty::Mutex(Box::new(Ty::Int)));
        let g = b.local("g", Ty::Guard(Box::new(Ty::Int)));
        let r = b.temp(Ty::shared_ref(Ty::Mutex(Box::new(Ty::Int))));
        b.storage_live(m);
        b.call_intrinsic_cont(Intrinsic::MutexNew, vec![Operand::int(0)], m);
        b.storage_live(r);
        b.assign(r, Rvalue::Ref(Mutability::Not, m.into()));
        b.call_intrinsic_cont(Intrinsic::MutexLock, vec![Operand::copy(r)], g);
        let (t_bb, e_bb) = b.branch_bool(Operand::int(1));
        b.switch_to(t_bb);
        b.ret();
        b.switch_to(e_bb);
        b.ret();
        let s = body_to_string(&b.finish());
        assert!(s.contains("_1 = call mutex::new(const 0) -> bb1;"), "{s}");
        assert!(s.contains("_2 = call mutex::lock(_3) -> bb2;"), "{s}");
        assert!(
            s.contains("switchInt(const 1) -> [1: bb3, otherwise: bb4];"),
            "{s}"
        );
    }

    #[test]
    fn prints_diverging_call_and_ptr_callee() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let fp = b.local("fp", Ty::Named("FnPtr".into()));
        b.storage_live(fp);
        let next = b.new_block();
        b.call(Callee::Ptr(fp), vec![], Place::RETURN, Some(next));
        b.switch_to(next);
        b.call(
            Callee::Intrinsic(Intrinsic::Abort),
            vec![],
            Place::RETURN,
            None,
        );
        let s = body_to_string(&b.finish());
        assert!(s.contains("_0 = call (*_1)() -> bb1;"), "{s}");
        assert!(s.contains("_0 = call process::abort() -> !;"), "{s}");
    }

    #[test]
    fn program_prints_entry_directive_when_not_main() {
        let mut b = BodyBuilder::new("start", 0, Ty::Unit);
        b.ret();
        let mut p = Program::from_bodies([b.finish()]);
        p.set_entry("start");
        let s = program_to_string(&p);
        assert!(s.starts_with("entry start;"), "{s}");
    }
}
