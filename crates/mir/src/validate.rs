//! Structural validation of bodies and programs.
//!
//! Validation catches malformed IR early (out-of-range locals and blocks,
//! missing terminators, calls to undefined functions, arity mismatches with
//! known intrinsics) so analyses can assume well-formedness.

use std::fmt;

use crate::intrinsics::Intrinsic;
use crate::program::Program;
use crate::syntax::{Body, Callee, Local, Place, TerminatorKind};
use crate::visit::{Location, PlaceContext, Visitor};

/// A single validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Function the error is in.
    pub function: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.function, self.message)
    }
}

impl std::error::Error for ValidationError {}

/// Expected argument count for intrinsics with a fixed arity.
fn intrinsic_arity(i: Intrinsic) -> Option<usize> {
    Some(match i {
        Intrinsic::Alloc => 1,
        Intrinsic::Dealloc => 1,
        Intrinsic::PtrRead => 1,
        Intrinsic::PtrWrite => 2,
        Intrinsic::PtrCopyNonoverlapping => 3,
        Intrinsic::MemDrop | Intrinsic::MemForget => 1,
        Intrinsic::MemUninitialized => 0,
        Intrinsic::MutexNew | Intrinsic::RwLockNew => 1,
        Intrinsic::MutexLock | Intrinsic::RwLockRead | Intrinsic::RwLockWrite => 1,
        Intrinsic::CondvarNew => 0,
        Intrinsic::CondvarWait => 2,
        Intrinsic::CondvarNotifyOne | Intrinsic::CondvarNotifyAll => 1,
        Intrinsic::ChannelUnbounded => 0,
        Intrinsic::ChannelBounded => 1,
        Intrinsic::ChannelSend => 2,
        Intrinsic::ChannelRecv => 1,
        Intrinsic::OnceNew => 0,
        Intrinsic::OnceCallOnce => 2,
        Intrinsic::AtomicNew => 1,
        Intrinsic::AtomicLoad => 1,
        Intrinsic::AtomicStore => 2,
        Intrinsic::AtomicCas => 3,
        Intrinsic::AtomicFetchAdd => 2,
        Intrinsic::ArcNew => 1,
        Intrinsic::ArcClone => 1,
        Intrinsic::ThreadSpawn => 2,
        Intrinsic::ThreadJoin => 1,
        Intrinsic::ThreadYield => 0,
        Intrinsic::Abort => 0,
        Intrinsic::ExternCall => return None,
    })
}

struct BodyValidator<'a> {
    body: &'a Body,
    errors: Vec<ValidationError>,
}

impl BodyValidator<'_> {
    fn err(&mut self, message: String) {
        self.errors.push(ValidationError {
            function: self.body.name.clone(),
            message,
        });
    }

    fn check_local(&mut self, local: Local, what: &str, loc: Location) {
        if local.index() >= self.body.locals.len() {
            self.err(format!("{what} {local} out of range at {loc}"));
        }
    }
}

impl Visitor for BodyValidator<'_> {
    fn visit_place(&mut self, place: &Place, _ctx: PlaceContext, loc: Location) {
        self.check_local(place.local, "place base", loc);
        for elem in &place.projection {
            if let crate::syntax::ProjElem::Index(l) = elem {
                self.check_local(*l, "index local", loc);
            }
        }
    }

    fn visit_statement(&mut self, stmt: &crate::syntax::Statement, loc: Location) {
        match &stmt.kind {
            crate::syntax::StatementKind::StorageLive(l)
            | crate::syntax::StatementKind::StorageDead(l) => {
                self.check_local(*l, "storage local", loc);
                if self.body.is_arg(*l) {
                    self.err(format!("storage marker on argument {l} at {loc}"));
                }
                if *l == Local::RETURN {
                    self.err(format!("storage marker on return place at {loc}"));
                }
            }
            _ => {}
        }
        // Recurse into places/operands via the default traversal.
        if let crate::syntax::StatementKind::Assign(place, rv) = &stmt.kind {
            self.visit_place(place, PlaceContext::Write, loc);
            self.visit_rvalue(rv, loc);
        }
    }

    fn visit_terminator(&mut self, term: &crate::syntax::Terminator, loc: Location) {
        for succ in term.kind.successors() {
            if succ.index() >= self.body.blocks.len() {
                self.err(format!("jump to missing block {succ} at {loc}"));
            }
        }
        if let TerminatorKind::Call {
            func: Callee::Intrinsic(i),
            args,
            ..
        } = &term.kind
        {
            if let Some(arity) = intrinsic_arity(*i) {
                if args.len() != arity {
                    self.err(format!(
                        "intrinsic {i} expects {arity} argument(s), got {} at {loc}",
                        args.len()
                    ));
                }
            }
        }
        if let TerminatorKind::Call {
            func: Callee::Ptr(l),
            ..
        } = &term.kind
        {
            self.check_local(*l, "callee local", loc);
        }
        // Default traversal for operands/places.
        match &term.kind {
            TerminatorKind::SwitchInt { discr, .. } => self.visit_operand(discr, loc),
            TerminatorKind::Call {
                args, destination, ..
            } => {
                for a in args {
                    self.visit_operand(a, loc);
                }
                self.visit_place(destination, PlaceContext::Write, loc);
            }
            TerminatorKind::Drop { place, .. } => self.visit_place(place, PlaceContext::Drop, loc),
            _ => {}
        }
    }
}

/// Validates a single body.
///
/// # Errors
///
/// Returns all problems found (empty `Ok(())` means well-formed).
pub fn validate_body(body: &Body) -> Result<(), Vec<ValidationError>> {
    let mut v = BodyValidator {
        body,
        errors: Vec::new(),
    };
    if body.locals.is_empty() {
        v.err("body has no return place".to_owned());
    }
    if body.arg_count >= body.locals.len() {
        v.err(format!(
            "arg_count {} exceeds locals {}",
            body.arg_count,
            body.locals.len()
        ));
    }
    if body.blocks.is_empty() {
        v.err("body has no blocks".to_owned());
    }
    for (i, b) in body.blocks.iter().enumerate() {
        if b.terminator.is_none() {
            v.err(format!("block bb{i} lacks a terminator"));
        }
    }
    v.visit_body(body);
    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

/// Validates every body in a program, plus cross-function properties:
/// the entry exists, `Callee::Fn` targets exist, and call arity matches
/// the callee's declared parameter count.
///
/// # Errors
///
/// Returns all problems found across all functions.
pub fn validate_program(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    if program.entry_body().is_none() {
        errors.push(ValidationError {
            function: program.entry().to_owned(),
            message: "entry function not defined".to_owned(),
        });
    }
    for (name, body) in program.iter() {
        if let Err(mut errs) = validate_body(body) {
            errors.append(&mut errs);
        }
        for bb in body.block_indices() {
            if let Some(term) = &body.block(bb).terminator {
                if let TerminatorKind::Call {
                    func: Callee::Fn(callee),
                    args,
                    ..
                } = &term.kind
                {
                    match program.function(callee) {
                        None => errors.push(ValidationError {
                            function: name.to_owned(),
                            message: format!("call to undefined function `{callee}` in {bb}"),
                        }),
                        Some(target) if target.arg_count != args.len() => {
                            errors.push(ValidationError {
                                function: name.to_owned(),
                                message: format!(
                                    "call to `{callee}` with {} argument(s); it takes {}",
                                    args.len(),
                                    target.arg_count
                                ),
                            })
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BodyBuilder;
    use crate::syntax::{BasicBlock, Operand, Rvalue, Statement, StatementKind, Terminator};
    use crate::ty::Ty;

    fn ok_body() -> Body {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let x = b.local("x", Ty::Int);
        b.storage_live(x);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.storage_dead(x);
        b.ret();
        b.finish()
    }

    #[test]
    fn accepts_well_formed_body() {
        assert!(validate_body(&ok_body()).is_ok());
    }

    #[test]
    fn rejects_out_of_range_local() {
        let mut body = ok_body();
        body.blocks[0]
            .statements
            .push(Statement::new(StatementKind::StorageLive(Local(99))));
        let errs = validate_body(&body).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn rejects_jump_to_missing_block() {
        let mut body = ok_body();
        body.blocks[0].terminator = Some(Terminator::new(TerminatorKind::Goto {
            target: BasicBlock(7),
        }));
        let errs = validate_body(&body).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("missing block")));
    }

    #[test]
    fn rejects_storage_marker_on_argument() {
        let mut b = BodyBuilder::new("f", 1, Ty::Unit);
        let x = b.arg("x", Ty::Int);
        b.storage_dead(x);
        b.ret();
        let errs = validate_body(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("argument")));
    }

    #[test]
    fn rejects_wrong_intrinsic_arity() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let g = b.local("g", Ty::Guard(Box::new(Ty::Int)));
        b.storage_live(g);
        b.call_intrinsic_cont(crate::Intrinsic::MutexLock, vec![], g);
        b.ret();
        let errs = validate_body(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expects 1")));
    }

    #[test]
    fn program_validation_finds_missing_entry_and_callee() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.call_fn_cont("missing", vec![], crate::Place::RETURN);
        b.ret();
        let p = Program::from_bodies([b.finish()]);
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("entry")));
        assert!(errs
            .iter()
            .any(|e| e.message.contains("undefined function")));
    }

    #[test]
    fn program_validation_checks_call_arity() {
        let mut callee = BodyBuilder::new("g", 2, Ty::Unit);
        callee.arg("a", Ty::Int);
        callee.arg("b", Ty::Int);
        callee.ret();
        let mut caller = BodyBuilder::new("main", 0, Ty::Unit);
        caller.call_fn_cont("g", vec![Operand::int(1)], crate::Place::RETURN);
        caller.ret();
        let p = Program::from_bodies([callee.finish(), caller.finish()]);
        let errs = validate_program(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("it takes 2")),
            "{errs:?}"
        );
    }

    #[test]
    fn valid_program_passes() {
        let mut main = BodyBuilder::new("main", 0, Ty::Unit);
        main.ret();
        let p = Program::from_bodies([main.finish()]);
        assert!(validate_program(&p).is_ok());
    }
}
