//! The IR's type language.
//!
//! Types are deliberately small: enough to distinguish the shapes the study's
//! detectors care about — owned values vs references vs raw pointers, arrays
//! (for bounds bugs), and the synchronization wrappers (`Mutex`, `RwLock`,
//! guards, channels) whose lifetimes drive the blocking-bug analyses.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::syntax::Mutability;

/// A type in the IR.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// The unit type `()`.
    Unit,
    /// Booleans.
    Bool,
    /// A single integer type (the IR does not model integer widths).
    Int,
    /// A borrow `&T` / `&mut T`.
    Ref(Mutability, Box<Ty>),
    /// A raw pointer `*const T` / `*mut T`.
    RawPtr(Mutability, Box<Ty>),
    /// A fixed-length array `[T; n]`.
    Array(Box<Ty>, u64),
    /// A tuple; `Tuple(vec![])` is distinct from [`Ty::Unit`] only in name.
    Tuple(Vec<Ty>),
    /// An opaque named struct. Field types are not tracked; projections
    /// through named structs are untyped, like MIR's opaque projections.
    Named(String),
    /// `Mutex<T>`.
    Mutex(Box<Ty>),
    /// `RwLock<T>`.
    RwLock(Box<Ty>),
    /// A lock guard holding `T`; dropping it releases the lock.
    Guard(Box<Ty>),
    /// A condition variable.
    Condvar,
    /// One endpoint of a channel of `T` (sender and receiver share a type).
    Channel(Box<Ty>),
    /// A `Once` cell.
    Once,
    /// An atomic integer.
    AtomicInt,
    /// A join handle for a spawned thread returning `T`.
    JoinHandle(Box<Ty>),
    /// An atomically reference-counted pointer `Arc<T>`.
    Arc(Box<Ty>),
}

impl Ty {
    /// Shorthand for `&T`.
    pub fn shared_ref(inner: Ty) -> Ty {
        Ty::Ref(Mutability::Not, Box::new(inner))
    }

    /// Shorthand for `&mut T`.
    pub fn mut_ref(inner: Ty) -> Ty {
        Ty::Ref(Mutability::Mut, Box::new(inner))
    }

    /// Shorthand for `*const T`.
    pub fn const_ptr(inner: Ty) -> Ty {
        Ty::RawPtr(Mutability::Not, Box::new(inner))
    }

    /// Shorthand for `*mut T`.
    pub fn mut_ptr(inner: Ty) -> Ty {
        Ty::RawPtr(Mutability::Mut, Box::new(inner))
    }

    /// Returns `true` for reference and raw-pointer types.
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Ty::Ref(..) | Ty::RawPtr(..))
    }

    /// Returns `true` for raw pointers (the unsafe-only pointer kind).
    pub fn is_raw_ptr(&self) -> bool {
        matches!(self, Ty::RawPtr(..))
    }

    /// The type pointed to, if this is a reference, raw pointer, or `Arc`.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ref(_, t) | Ty::RawPtr(_, t) | Ty::Arc(t) => Some(t),
            _ => None,
        }
    }

    /// Returns `true` for the synchronization-primitive types whose misuse
    /// the blocking-bug study tracks (Table 3).
    pub fn is_sync_primitive(&self) -> bool {
        matches!(
            self,
            Ty::Mutex(_) | Ty::RwLock(_) | Ty::Condvar | Ty::Channel(_) | Ty::Once
        )
    }

    /// Returns `true` if values of this type release a lock when dropped.
    pub fn is_guard(&self) -> bool {
        matches!(self, Ty::Guard(_))
    }

    /// Whether a value of this type is a plain scalar (fits in one cell).
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Ty::Unit
                | Ty::Bool
                | Ty::Int
                | Ty::Ref(..)
                | Ty::RawPtr(..)
                | Ty::AtomicInt
                | Ty::Condvar
                | Ty::Once
        )
    }

    /// Number of memory cells a value of this type occupies in the
    /// interpreter's flat layout. Opaque [`Ty::Named`] values occupy one cell.
    pub fn size_cells(&self) -> u64 {
        match self {
            Ty::Array(elem, n) => elem.size_cells() * n,
            Ty::Tuple(elems) => elems.iter().map(Ty::size_cells).sum::<u64>().max(1),
            Ty::Mutex(inner) | Ty::RwLock(inner) => 1 + inner.size_cells(),
            Ty::Guard(_) | Ty::Channel(_) | Ty::JoinHandle(_) | Ty::Arc(_) => 1,
            _ => 1,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Unit => f.write_str("unit"),
            Ty::Bool => f.write_str("bool"),
            Ty::Int => f.write_str("int"),
            Ty::Ref(Mutability::Not, t) => write!(f, "&{t}"),
            Ty::Ref(Mutability::Mut, t) => write!(f, "&mut {t}"),
            Ty::RawPtr(Mutability::Not, t) => write!(f, "*const {t}"),
            Ty::RawPtr(Mutability::Mut, t) => write!(f, "*mut {t}"),
            Ty::Array(t, n) => write!(f, "[{t}; {n}]"),
            Ty::Tuple(ts) => {
                f.write_str("(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")
            }
            Ty::Named(name) => f.write_str(name),
            Ty::Mutex(t) => write!(f, "Mutex<{t}>"),
            Ty::RwLock(t) => write!(f, "RwLock<{t}>"),
            Ty::Guard(t) => write!(f, "Guard<{t}>"),
            Ty::Condvar => f.write_str("Condvar"),
            Ty::Channel(t) => write!(f, "Channel<{t}>"),
            Ty::Once => f.write_str("Once"),
            Ty::AtomicInt => f.write_str("AtomicInt"),
            Ty::JoinHandle(t) => write!(f, "JoinHandle<{t}>"),
            Ty::Arc(t) => write!(f, "Arc<{t}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_common_shapes() {
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(Ty::mut_ref(Ty::Int).to_string(), "&mut int");
        assert_eq!(Ty::const_ptr(Ty::Bool).to_string(), "*const bool");
        assert_eq!(Ty::Array(Box::new(Ty::Int), 8).to_string(), "[int; 8]");
        assert_eq!(Ty::Mutex(Box::new(Ty::Int)).to_string(), "Mutex<int>");
        assert_eq!(
            Ty::Tuple(vec![Ty::Int, Ty::Bool]).to_string(),
            "(int, bool)"
        );
    }

    #[test]
    fn pointer_classification() {
        assert!(Ty::mut_ptr(Ty::Int).is_raw_ptr());
        assert!(Ty::mut_ptr(Ty::Int).is_pointer_like());
        assert!(Ty::shared_ref(Ty::Int).is_pointer_like());
        assert!(!Ty::shared_ref(Ty::Int).is_raw_ptr());
        assert_eq!(Ty::mut_ptr(Ty::Bool).pointee(), Some(&Ty::Bool));
        assert_eq!(Ty::Int.pointee(), None);
    }

    #[test]
    fn sync_primitives_are_classified() {
        assert!(Ty::Mutex(Box::new(Ty::Int)).is_sync_primitive());
        assert!(Ty::Condvar.is_sync_primitive());
        assert!(Ty::Once.is_sync_primitive());
        assert!(!Ty::Guard(Box::new(Ty::Int)).is_sync_primitive());
        assert!(Ty::Guard(Box::new(Ty::Int)).is_guard());
    }

    #[test]
    fn sizes_compose() {
        assert_eq!(Ty::Int.size_cells(), 1);
        assert_eq!(Ty::Array(Box::new(Ty::Int), 10).size_cells(), 10);
        let pair = Ty::Tuple(vec![Ty::Int, Ty::Array(Box::new(Ty::Int), 3)]);
        assert_eq!(pair.size_cells(), 4);
        assert_eq!(Ty::Mutex(Box::new(Ty::Int)).size_cells(), 2);
        assert_eq!(Ty::Tuple(vec![]).size_cells(), 1);
    }
}
