//! A read-only visitor over bodies.
//!
//! Analyses that only need to enumerate places/operands (liveness, points-to
//! seeding, diagnostics) implement [`Visitor`] and get traversal order and
//! [`Location`] bookkeeping for free.

use crate::syntax::{
    BasicBlock, Body, Operand, Place, Rvalue, Statement, StatementKind, Terminator, TerminatorKind,
};

/// A program point: a block plus a statement index.
///
/// `statement_index == block.statements.len()` denotes the terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// The basic block.
    pub block: BasicBlock,
    /// Index of the statement, or one past the end for the terminator.
    pub statement_index: usize,
}

impl Location {
    /// The start of a block.
    pub fn start_of(block: BasicBlock) -> Location {
        Location {
            block,
            statement_index: 0,
        }
    }

    /// Returns `true` if this location denotes the block's terminator.
    pub fn is_terminator(&self, body: &Body) -> bool {
        self.statement_index == body.block(self.block).statements.len()
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.block, self.statement_index)
    }
}

/// How a place is being accessed at a visit site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceContext {
    /// Read by a copy.
    Copy,
    /// Read by a move (ends initialization).
    Move,
    /// Written (assignment destination or call destination).
    Write,
    /// Borrowed with `&` / `&mut`.
    Borrow,
    /// Address taken with `&raw`.
    AddressOf,
    /// Dropped by a `Drop` terminator.
    Drop,
    /// Inspected without reading the value (e.g. `len`).
    Inspect,
}

impl PlaceContext {
    /// Returns `true` if the access reads the current value.
    pub fn is_use(self) -> bool {
        matches!(
            self,
            PlaceContext::Copy | PlaceContext::Move | PlaceContext::Drop
        )
    }

    /// Returns `true` if the access writes the place.
    pub fn is_write(self) -> bool {
        matches!(self, PlaceContext::Write)
    }
}

/// Read-only traversal callbacks. Override what you need; defaults recurse.
pub trait Visitor {
    /// Visit every block of `body` in index order.
    fn visit_body(&mut self, body: &Body) {
        for bb in body.block_indices() {
            let data = body.block(bb);
            for (i, stmt) in data.statements.iter().enumerate() {
                self.visit_statement(
                    stmt,
                    Location {
                        block: bb,
                        statement_index: i,
                    },
                );
            }
            if let Some(term) = &data.terminator {
                self.visit_terminator(
                    term,
                    Location {
                        block: bb,
                        statement_index: data.statements.len(),
                    },
                );
            }
        }
    }

    /// Called for every statement; default dispatches on the kind.
    fn visit_statement(&mut self, stmt: &Statement, location: Location) {
        match &stmt.kind {
            StatementKind::Assign(place, rv) => {
                self.visit_place(place, PlaceContext::Write, location);
                self.visit_rvalue(rv, location);
            }
            StatementKind::StorageLive(_) | StatementKind::StorageDead(_) | StatementKind::Nop => {}
        }
    }

    /// Called for every rvalue; default visits nested places/operands.
    fn visit_rvalue(&mut self, rv: &Rvalue, location: Location) {
        match rv {
            Rvalue::Use(op) | Rvalue::UnaryOp(_, op) | Rvalue::Cast(op, _) => {
                self.visit_operand(op, location);
            }
            Rvalue::BinaryOp(_, a, b) => {
                self.visit_operand(a, location);
                self.visit_operand(b, location);
            }
            Rvalue::Ref(_, place) => self.visit_place(place, PlaceContext::Borrow, location),
            Rvalue::AddrOf(_, place) => self.visit_place(place, PlaceContext::AddressOf, location),
            Rvalue::Len(place) => self.visit_place(place, PlaceContext::Inspect, location),
            Rvalue::Aggregate(ops) => {
                for op in ops {
                    self.visit_operand(op, location);
                }
            }
        }
    }

    /// Called for every operand; default visits the underlying place.
    fn visit_operand(&mut self, op: &Operand, location: Location) {
        match op {
            Operand::Copy(place) => self.visit_place(place, PlaceContext::Copy, location),
            Operand::Move(place) => self.visit_place(place, PlaceContext::Move, location),
            Operand::Const(_) => {}
        }
    }

    /// Called for every terminator; default visits operands and places.
    fn visit_terminator(&mut self, term: &Terminator, location: Location) {
        match &term.kind {
            TerminatorKind::SwitchInt { discr, .. } => self.visit_operand(discr, location),
            TerminatorKind::Call {
                args, destination, ..
            } => {
                for a in args {
                    self.visit_operand(a, location);
                }
                self.visit_place(destination, PlaceContext::Write, location);
            }
            TerminatorKind::Drop { place, .. } => {
                self.visit_place(place, PlaceContext::Drop, location)
            }
            TerminatorKind::Goto { .. } | TerminatorKind::Return | TerminatorKind::Unreachable => {}
        }
    }

    /// Called for every place access. Default does nothing.
    fn visit_place(&mut self, _place: &Place, _context: PlaceContext, _location: Location) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BodyBuilder;
    use crate::syntax::{BinOp, Callee, Local};
    use crate::ty::Ty;
    use crate::{Operand, Rvalue};

    /// Collects `(local, context)` pairs in traversal order.
    struct Collect(Vec<(Local, PlaceContext)>);

    impl Visitor for Collect {
        fn visit_place(&mut self, place: &Place, context: PlaceContext, _location: Location) {
            self.0.push((place.local, context));
        }
    }

    #[test]
    fn visitor_sees_reads_writes_and_drops() {
        let mut b = BodyBuilder::new("f", 0, Ty::Int);
        let x = b.local("x", Ty::Int);
        let y = b.local("y", Ty::Int);
        b.storage_live(x);
        b.storage_live(y);
        b.assign(x, Rvalue::Use(Operand::int(1)));
        b.assign(
            y,
            Rvalue::BinaryOp(BinOp::Add, Operand::copy(x), Operand::mov(x)),
        );
        let next = b.new_block();
        b.drop_place(y, next);
        b.switch_to(next);
        b.ret();
        let body = b.finish();

        let mut v = Collect(Vec::new());
        v.visit_body(&body);
        assert_eq!(
            v.0,
            vec![
                (x, PlaceContext::Write),
                (y, PlaceContext::Write),
                (x, PlaceContext::Copy),
                (x, PlaceContext::Move),
                (y, PlaceContext::Drop),
            ]
        );
    }

    #[test]
    fn call_terminator_visits_args_then_destination() {
        let mut b = BodyBuilder::new("f", 0, Ty::Int);
        let a = b.local("a", Ty::Int);
        let d = b.local("d", Ty::Int);
        b.storage_live(a);
        b.storage_live(d);
        let next = b.new_block();
        b.call(
            Callee::Fn("g".into()),
            vec![Operand::copy(a)],
            d,
            Some(next),
        );
        b.switch_to(next);
        b.ret();
        let body = b.finish();

        let mut v = Collect(Vec::new());
        v.visit_body(&body);
        assert_eq!(v.0, vec![(a, PlaceContext::Copy), (d, PlaceContext::Write)]);
    }

    #[test]
    fn location_identifies_terminators() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.nop();
        b.ret();
        let body = b.finish();
        let stmt_loc = Location {
            block: BasicBlock(0),
            statement_index: 0,
        };
        let term_loc = Location {
            block: BasicBlock(0),
            statement_index: 1,
        };
        assert!(!stmt_loc.is_terminator(&body));
        assert!(term_loc.is_terminator(&body));
        assert_eq!(term_loc.to_string(), "bb0[1]");
    }

    #[test]
    fn place_context_predicates() {
        assert!(PlaceContext::Move.is_use());
        assert!(PlaceContext::Drop.is_use());
        assert!(!PlaceContext::Write.is_use());
        assert!(PlaceContext::Write.is_write());
        assert!(!PlaceContext::Borrow.is_write());
    }
}
