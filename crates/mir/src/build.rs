//! Fluent construction of function bodies.
//!
//! [`BodyBuilder`] keeps a *current block* cursor; statement methods append
//! to it, terminator methods seal it. Convenience `*_cont` methods seal the
//! current block with a terminator that falls through into a freshly created
//! block and move the cursor there — the common shape for calls and drops.
//!
//! ```
//! use rstudy_mir::build::BodyBuilder;
//! use rstudy_mir::{Intrinsic, Operand, Rvalue, Ty};
//!
//! // fn main() { let m = mutex::new(0); let g = mutex::lock(&m); }
//! let mut b = BodyBuilder::new("main", 0, Ty::Unit);
//! let m = b.local("m", Ty::Mutex(Box::new(Ty::Int)));
//! let g = b.local("g", Ty::Guard(Box::new(Ty::Int)));
//! b.storage_live(m);
//! b.call_intrinsic_cont(Intrinsic::MutexNew, vec![Operand::int(0)], m);
//! b.storage_live(g);
//! let mref = b.temp_assign(Ty::shared_ref(Ty::Mutex(Box::new(Ty::Int))),
//!                          Rvalue::Ref(Default::default(), m.into()));
//! b.call_intrinsic_cont(Intrinsic::MutexLock, vec![Operand::copy(mref)], g);
//! b.storage_dead(g);
//! b.storage_dead(m);
//! b.ret();
//! let body = b.finish();
//! assert_eq!(body.blocks.len(), 3);
//! ```

use crate::source::{Safety, SourceInfo, Span};
use crate::syntax::{
    BasicBlock, BasicBlockData, Body, Callee, Local, LocalDecl, Operand, Place, Rvalue, Statement,
    StatementKind, Terminator, TerminatorKind,
};
use crate::ty::Ty;
use crate::Intrinsic;

/// Incremental builder for a [`Body`].
#[derive(Debug)]
pub struct BodyBuilder {
    name: String,
    arg_count: usize,
    locals: Vec<LocalDecl>,
    blocks: Vec<BasicBlockData>,
    current: BasicBlock,
    safety: Safety,
    span: Span,
    is_unsafe_fn: bool,
}

impl BodyBuilder {
    /// Starts a body named `name` with `arg_count` arguments still to be
    /// declared via [`BodyBuilder::arg`], and return type `ret_ty`.
    ///
    /// The entry block `bb0` is created and selected.
    pub fn new(name: impl Into<String>, arg_count: usize, ret_ty: Ty) -> BodyBuilder {
        BodyBuilder {
            name: name.into(),
            arg_count,
            locals: vec![LocalDecl::temp(ret_ty)],
            blocks: vec![BasicBlockData::new()],
            current: BasicBlock::ENTRY,
            safety: Safety::Safe,
            span: Span::SYNTHETIC,
            is_unsafe_fn: false,
        }
    }

    /// Marks the function as an `unsafe fn`; all of its statements are
    /// considered to execute in an unsafe context.
    pub fn unsafe_fn(&mut self) -> &mut Self {
        self.is_unsafe_fn = true;
        self.safety = Safety::Unsafe;
        self
    }

    /// Declares the next argument local. Must be called exactly `arg_count`
    /// times before any non-argument local is declared.
    ///
    /// # Panics
    ///
    /// Panics if all declared arguments have already been supplied or if a
    /// temporary was declared first.
    pub fn arg(&mut self, name: impl Into<String>, ty: Ty) -> Local {
        assert!(
            self.locals.len() <= self.arg_count,
            "argument declared after non-argument locals"
        );
        self.locals.push(LocalDecl::named(name, ty));
        Local((self.locals.len() - 1) as u32)
    }

    /// Declares a named local variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Ty) -> Local {
        assert!(
            self.locals.len() > self.arg_count,
            "declare all {} argument(s) first",
            self.arg_count
        );
        self.locals.push(LocalDecl::named(name, ty));
        Local((self.locals.len() - 1) as u32)
    }

    /// Declares an anonymous temporary.
    pub fn temp(&mut self, ty: Ty) -> Local {
        assert!(
            self.locals.len() > self.arg_count,
            "declare all {} argument(s) first",
            self.arg_count
        );
        self.locals.push(LocalDecl::temp(ty));
        Local((self.locals.len() - 1) as u32)
    }

    /// Declares a temporary, makes it live, and assigns `rv` to it.
    pub fn temp_assign(&mut self, ty: Ty, rv: Rvalue) -> Local {
        let t = self.temp(ty);
        self.storage_live(t);
        self.assign(t, rv);
        t
    }

    // --- context ---------------------------------------------------------

    /// Sets the safety context for subsequently pushed nodes.
    pub fn set_safety(&mut self, safety: Safety) -> &mut Self {
        self.safety = safety;
        self
    }

    /// Runs `f` with the safety context set to `Unsafe`, then restores it —
    /// the builder analogue of an `unsafe { .. }` block.
    pub fn in_unsafe<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let saved = self.safety;
        self.safety = Safety::Unsafe;
        let out = f(self);
        self.safety = saved;
        out
    }

    /// Sets the source line attached to subsequently pushed nodes.
    pub fn at_line(&mut self, line: u32) -> &mut Self {
        self.span = if line == 0 {
            Span::SYNTHETIC
        } else {
            Span::new(line, 1)
        };
        self
    }

    fn info(&self) -> SourceInfo {
        SourceInfo::new(self.span, self.safety)
    }

    // --- blocks ------------------------------------------------------------

    /// Creates a new, empty block without selecting it.
    pub fn new_block(&mut self) -> BasicBlock {
        self.blocks.push(BasicBlockData::new());
        BasicBlock((self.blocks.len() - 1) as u32)
    }

    /// Selects the block that subsequent statements append to.
    ///
    /// # Panics
    ///
    /// Panics if `bb` is out of range or already sealed with a terminator.
    pub fn switch_to(&mut self, bb: BasicBlock) {
        assert!(bb.index() < self.blocks.len(), "no such block {bb}");
        assert!(
            self.blocks[bb.index()].terminator.is_none(),
            "block {bb} is already terminated"
        );
        self.current = bb;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BasicBlock {
        self.current
    }

    // --- statements --------------------------------------------------------

    fn push(&mut self, kind: StatementKind) {
        let info = self.info();
        let cur = self.current.index();
        assert!(
            self.blocks[cur].terminator.is_none(),
            "pushing statement into terminated block bb{cur}"
        );
        self.blocks[cur].statements.push(Statement {
            kind,
            source_info: info,
        });
    }

    /// Appends `place = rv`, where `place` may be a bare local.
    pub fn assign(&mut self, place: impl Into<Place>, rv: Rvalue) {
        self.push(StatementKind::Assign(place.into(), rv));
    }

    /// Appends `place = rv` for an already-projected place (alias of
    /// [`BodyBuilder::assign`], kept for call-site clarity).
    pub fn assign_place(&mut self, place: Place, rv: Rvalue) {
        self.push(StatementKind::Assign(place, rv));
    }

    /// Appends `StorageLive(local)`.
    pub fn storage_live(&mut self, local: Local) {
        self.push(StatementKind::StorageLive(local));
    }

    /// Appends `StorageDead(local)`.
    pub fn storage_dead(&mut self, local: Local) {
        self.push(StatementKind::StorageDead(local));
    }

    /// Appends a no-op.
    pub fn nop(&mut self) {
        self.push(StatementKind::Nop);
    }

    // --- terminators -----------------------------------------------------

    fn terminate(&mut self, kind: TerminatorKind) {
        let info = self.info();
        let cur = self.current.index();
        assert!(
            self.blocks[cur].terminator.is_none(),
            "block bb{cur} terminated twice"
        );
        self.blocks[cur].terminator = Some(Terminator {
            kind,
            source_info: info,
        });
    }

    /// Seals the current block with `Goto -> target`.
    pub fn goto(&mut self, target: BasicBlock) {
        self.terminate(TerminatorKind::Goto { target });
    }

    /// Seals the current block with a goto into a fresh block and selects it.
    pub fn goto_cont(&mut self) -> BasicBlock {
        let next = self.new_block();
        self.goto(next);
        self.current = next;
        next
    }

    /// Seals the current block with a `SwitchInt`.
    pub fn switch_int(
        &mut self,
        discr: Operand,
        targets: Vec<(i64, BasicBlock)>,
        otherwise: BasicBlock,
    ) {
        self.terminate(TerminatorKind::SwitchInt {
            discr,
            targets,
            otherwise,
        });
    }

    /// Seals the current block with an if/else on a boolean operand,
    /// returning `(then_block, else_block)`. Neither is selected.
    pub fn branch_bool(&mut self, discr: Operand) -> (BasicBlock, BasicBlock) {
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        self.switch_int(discr, vec![(1, then_bb)], else_bb);
        (then_bb, else_bb)
    }

    /// Seals the current block with a call terminator.
    pub fn call(
        &mut self,
        func: Callee,
        args: Vec<Operand>,
        destination: impl Into<Place>,
        target: Option<BasicBlock>,
    ) {
        self.terminate(TerminatorKind::Call {
            func,
            args,
            destination: destination.into(),
            target,
        });
    }

    /// Calls a named function and continues in a fresh block (selected).
    pub fn call_fn_cont(
        &mut self,
        name: impl Into<String>,
        args: Vec<Operand>,
        destination: impl Into<Place>,
    ) -> BasicBlock {
        let next = self.new_block();
        self.call(Callee::Fn(name.into()), args, destination, Some(next));
        self.current = next;
        next
    }

    /// Calls an intrinsic and continues in a fresh block (selected).
    pub fn call_intrinsic_cont(
        &mut self,
        intrinsic: Intrinsic,
        args: Vec<Operand>,
        destination: impl Into<Place>,
    ) -> BasicBlock {
        let next = self.new_block();
        self.call(Callee::Intrinsic(intrinsic), args, destination, Some(next));
        self.current = next;
        next
    }

    /// Seals the current block with `Drop(place) -> target`.
    pub fn drop_place(&mut self, place: impl Into<Place>, target: BasicBlock) {
        self.terminate(TerminatorKind::Drop {
            place: place.into(),
            target,
        });
    }

    /// Drops a place and continues in a fresh block (selected).
    pub fn drop_cont(&mut self, place: impl Into<Place>) -> BasicBlock {
        let next = self.new_block();
        self.drop_place(place, next);
        self.current = next;
        next
    }

    /// Seals the current block with `Return`.
    pub fn ret(&mut self) {
        self.terminate(TerminatorKind::Return);
    }

    /// Seals the current block with `Unreachable`.
    pub fn unreachable(&mut self) {
        self.terminate(TerminatorKind::Unreachable);
    }

    // --- finish -----------------------------------------------------------

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if the declared argument count was not satisfied or any block
    /// lacks a terminator.
    pub fn finish(self) -> Body {
        assert!(
            self.locals.len() > self.arg_count,
            "{}: {} argument(s) declared but never supplied",
            self.name,
            self.arg_count
        );
        for (i, b) in self.blocks.iter().enumerate() {
            assert!(
                b.terminator.is_some(),
                "{}: block bb{i} has no terminator",
                self.name
            );
        }
        Body {
            name: self.name,
            arg_count: self.arg_count,
            locals: self.locals,
            blocks: self.blocks,
            is_unsafe_fn: self.is_unsafe_fn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Const;

    #[test]
    fn builds_straightline_body() {
        let mut b = BodyBuilder::new("f", 1, Ty::Int);
        let x = b.arg("x", Ty::Int);
        let t = b.local("t", Ty::Int);
        b.storage_live(t);
        b.assign(
            t,
            Rvalue::BinaryOp(crate::syntax::BinOp::Add, Operand::copy(x), Operand::int(1)),
        );
        b.assign_place(Place::RETURN, Rvalue::Use(Operand::copy(t)));
        b.storage_dead(t);
        b.ret();
        let body = b.finish();
        assert_eq!(body.arg_count, 1);
        assert_eq!(body.locals.len(), 3);
        assert_eq!(body.blocks.len(), 1);
        assert_eq!(body.block(BasicBlock::ENTRY).statements.len(), 4);
    }

    #[test]
    fn unsafe_context_is_recorded_and_restored() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.nop();
        b.in_unsafe(|b| b.nop());
        b.nop();
        b.ret();
        let body = b.finish();
        let stmts = &body.block(BasicBlock::ENTRY).statements;
        assert!(!stmts[0].source_info.safety.is_unsafe());
        assert!(stmts[1].source_info.safety.is_unsafe());
        assert!(!stmts[2].source_info.safety.is_unsafe());
    }

    #[test]
    fn unsafe_fn_marks_everything_unsafe() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.unsafe_fn();
        b.nop();
        b.ret();
        let body = b.finish();
        assert!(body.is_unsafe_fn);
        assert!(body.block(BasicBlock::ENTRY).statements[0]
            .source_info
            .safety
            .is_unsafe());
    }

    #[test]
    fn branch_bool_creates_two_arms() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let c = b.temp_assign(Ty::Bool, Rvalue::Use(Operand::constant(Const::Bool(true))));
        let (then_bb, else_bb) = b.branch_bool(Operand::copy(c));
        b.switch_to(then_bb);
        b.ret();
        b.switch_to(else_bb);
        b.ret();
        let body = b.finish();
        assert_eq!(body.blocks.len(), 3);
        let succ = body.block(BasicBlock::ENTRY).terminator().kind.successors();
        assert_eq!(succ, vec![then_bb, else_bb]);
    }

    #[test]
    #[should_panic(expected = "has no terminator")]
    fn finish_rejects_unterminated_blocks() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.nop();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.ret();
        b.ret();
    }

    #[test]
    #[should_panic(expected = "argument(s) first")]
    fn locals_before_args_panic() {
        let mut b = BodyBuilder::new("f", 1, Ty::Unit);
        let _ = b.local("x", Ty::Int);
    }

    #[test]
    fn line_annotations_attach_to_spans() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.at_line(7);
        b.nop();
        b.at_line(0);
        b.nop();
        b.ret();
        let body = b.finish();
        let stmts = &body.block(BasicBlock::ENTRY).statements;
        assert_eq!(stmts[0].source_info.span.line, 7);
        assert!(stmts[1].source_info.span.is_synthetic());
    }
}
