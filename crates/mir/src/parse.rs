//! Parser for the textual MIR format produced by [`crate::pretty`].
//!
//! The grammar is line-oriented only in spirit; tokens carry positions so
//! diagnostics and statement spans point back into the source text.

use std::fmt;

use crate::intrinsics::Intrinsic;
use crate::program::Program;
use crate::source::{Safety, SourceInfo, Span};
use crate::syntax::{
    BasicBlock, BasicBlockData, BinOp, Body, Callee, Const, Local, LocalDecl, Mutability, Operand,
    Place, Rvalue, Statement, StatementKind, Terminator, TerminatorKind, UnOp,
};
use crate::ty::Ty;

/// A parse failure with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the failure was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole program (entry directive plus function definitions).
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending token.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut program = Program::new();
    if p.eat_ident("entry") {
        let name = p.expect_any_ident("entry function name")?;
        p.expect_punct(";")?;
        program.set_entry(name);
    }
    while !p.at_end() {
        let body = p.parse_fn()?;
        program.insert(body);
    }
    Ok(program)
}

/// Parses a single function body.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending token.
pub fn parse_body(src: &str) -> Result<Body, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let body = p.parse_fn()?;
    if !p.at_end() {
        return Err(p.error_here("trailing input after function body"));
    }
    Ok(body)
}

// --- lexer --------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenKind {
    Ident(String),
    Int(i64),
    Punct(&'static str),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Token {
    kind: TokenKind,
    span: Span,
}

const PUNCTS2: &[&str] = &["->", "::", "==", "!=", "<=", ">=", "&&", "||"];
const PUNCTS1: &[&str] = &[
    "(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "=", "<", ">", "&", "*", "!", "-", "+", "/",
    "%",
];

fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let span = Span::new(line, col);
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let text = &src[start..i];
            col += (i - start) as u32;
            tokens.push(Token {
                kind: TokenKind::Ident(text.to_owned()),
                span,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let text = &src[start..i];
            col += (i - start) as u32;
            let value: i64 = text.parse().map_err(|_| ParseError {
                span,
                message: format!("integer literal `{text}` out of range"),
            })?;
            tokens.push(Token {
                kind: TokenKind::Int(value),
                span,
            });
            continue;
        }
        if i + 1 < bytes.len() {
            let two = &src[i..i + 2];
            if let Some(&p) = PUNCTS2.iter().find(|&&p| p == two) {
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    span,
                });
                i += 2;
                col += 2;
                continue;
            }
        }
        let one = &src[i..i + 1];
        if let Some(&p) = PUNCTS1.iter().find(|&&p| p == one) {
            tokens.push(Token {
                kind: TokenKind::Punct(p),
                span,
            });
            i += 1;
            col += 1;
            continue;
        }
        return Err(ParseError {
            span,
            message: format!("unexpected character `{c}`"),
        });
    }
    Ok(tokens)
}

// --- parser ------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Safety applied to nodes without an explicit `unsafe` prefix
    /// (set while parsing the body of an `unsafe fn`).
    ambient_safety: Safety,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            ambient_safety: Safety::Safe,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.span)
            .unwrap_or(Span::SYNTHETIC)
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            span: self.here(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{p}`")))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{word}`")))
        }
    }

    fn expect_any_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error_here(format!("expected {what}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.peek() {
            Some(TokenKind::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.error_here("expected integer")),
        }
    }

    fn expect_local(&mut self) -> Result<Local, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) if s.starts_with('_') => {
                let digits = &s[1..];
                if let Ok(n) = digits.parse::<u32>() {
                    self.pos += 1;
                    return Ok(Local(n));
                }
                Err(self.error_here(format!("malformed local `{s}`")))
            }
            _ => Err(self.error_here("expected local (like `_1`)")),
        }
    }

    fn expect_bb(&mut self) -> Result<BasicBlock, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) if s.starts_with("bb") => {
                if let Ok(n) = s[2..].parse::<u32>() {
                    self.pos += 1;
                    return Ok(BasicBlock(n));
                }
                Err(self.error_here(format!("malformed block label `{s}`")))
            }
            _ => Err(self.error_here("expected block label (like `bb0`)")),
        }
    }

    // --- functions -----------------------------------------------------

    fn parse_fn(&mut self) -> Result<Body, ParseError> {
        let is_unsafe_fn = self.eat_ident("unsafe");
        self.expect_ident("fn")?;
        self.ambient_safety = if is_unsafe_fn {
            Safety::Unsafe
        } else {
            Safety::Safe
        };
        let name = self.expect_any_ident("function name")?;
        self.expect_punct("(")?;
        let mut params: Vec<LocalDecl> = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let local = self.expect_local()?;
                if local.index() != params.len() + 1 {
                    return Err(self.error_here(format!(
                        "argument locals must be consecutive starting at _1, got {local}"
                    )));
                }
                let pname = if self.eat_ident("as") {
                    Some(self.expect_any_ident("parameter name")?)
                } else {
                    None
                };
                self.expect_punct(":")?;
                let ty = self.parse_ty()?;
                params.push(LocalDecl { name: pname, ty });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct("->")?;
        let ret_ty = self.parse_ty()?;
        self.expect_punct("{")?;

        let mut locals = vec![LocalDecl::temp(ret_ty)];
        let arg_count = params.len();
        locals.extend(params);

        while self.eat_ident("let") {
            let local = self.expect_local()?;
            if local.index() != locals.len() {
                return Err(self.error_here(format!(
                    "local declarations must be consecutive, expected _{} got {local}",
                    locals.len()
                )));
            }
            let name = if self.eat_ident("as") {
                Some(self.expect_any_ident("local name")?)
            } else {
                None
            };
            self.expect_punct(":")?;
            let ty = self.parse_ty()?;
            self.expect_punct(";")?;
            locals.push(LocalDecl { name, ty });
        }

        let mut blocks: Vec<BasicBlockData> = Vec::new();
        while !self.eat_punct("}") {
            let bb = self.expect_bb()?;
            if bb.index() != blocks.len() {
                return Err(self.error_here(format!(
                    "blocks must be consecutive, expected bb{} got {bb}",
                    blocks.len()
                )));
            }
            self.expect_punct(":")?;
            self.expect_punct("{")?;
            let mut data = BasicBlockData::new();
            while !self.eat_punct("}") {
                if data.terminator.is_some() {
                    return Err(self.error_here(format!("statement after terminator in {bb}")));
                }
                self.parse_instruction(&mut data)?;
            }
            blocks.push(data);
        }

        Ok(Body {
            name,
            arg_count,
            locals,
            blocks,
            is_unsafe_fn,
        })
    }

    /// Parses one `;`-terminated statement or terminator into `data`.
    fn parse_instruction(&mut self, data: &mut BasicBlockData) -> Result<(), ParseError> {
        let span = self.here();
        let safety = if self.eat_ident("unsafe") {
            Safety::Unsafe
        } else {
            self.ambient_safety
        };
        let info = SourceInfo::new(span, safety);

        // Keyword-led statements / terminators.
        if self.eat_ident("StorageLive") {
            self.expect_punct("(")?;
            let l = self.expect_local()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            data.statements.push(Statement {
                kind: StatementKind::StorageLive(l),
                source_info: info,
            });
            return Ok(());
        }
        if self.eat_ident("StorageDead") {
            self.expect_punct("(")?;
            let l = self.expect_local()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            data.statements.push(Statement {
                kind: StatementKind::StorageDead(l),
                source_info: info,
            });
            return Ok(());
        }
        if self.eat_ident("nop") {
            self.expect_punct(";")?;
            data.statements.push(Statement {
                kind: StatementKind::Nop,
                source_info: info,
            });
            return Ok(());
        }
        if self.eat_ident("goto") {
            self.expect_punct("->")?;
            let target = self.expect_bb()?;
            self.expect_punct(";")?;
            data.terminator = Some(Terminator {
                kind: TerminatorKind::Goto { target },
                source_info: info,
            });
            return Ok(());
        }
        if self.eat_ident("return") {
            self.expect_punct(";")?;
            data.terminator = Some(Terminator {
                kind: TerminatorKind::Return,
                source_info: info,
            });
            return Ok(());
        }
        if self.eat_ident("unreachable") {
            self.expect_punct(";")?;
            data.terminator = Some(Terminator {
                kind: TerminatorKind::Unreachable,
                source_info: info,
            });
            return Ok(());
        }
        if self.eat_ident("switchInt") {
            self.expect_punct("(")?;
            let discr = self.parse_operand()?;
            self.expect_punct(")")?;
            self.expect_punct("->")?;
            self.expect_punct("[")?;
            let mut targets = Vec::new();
            let otherwise;
            loop {
                if self.eat_ident("otherwise") {
                    self.expect_punct(":")?;
                    otherwise = self.expect_bb()?;
                    self.expect_punct("]")?;
                    break;
                }
                let neg = self.eat_punct("-");
                let mut v = self.expect_int()?;
                if neg {
                    v = -v;
                }
                self.expect_punct(":")?;
                let bb = self.expect_bb()?;
                targets.push((v, bb));
                self.expect_punct(",")?;
            }
            self.expect_punct(";")?;
            data.terminator = Some(Terminator {
                kind: TerminatorKind::SwitchInt {
                    discr,
                    targets,
                    otherwise,
                },
                source_info: info,
            });
            return Ok(());
        }
        if self.eat_ident("drop") {
            self.expect_punct("(")?;
            let place = self.parse_place()?;
            self.expect_punct(")")?;
            self.expect_punct("->")?;
            let target = self.expect_bb()?;
            self.expect_punct(";")?;
            data.terminator = Some(Terminator {
                kind: TerminatorKind::Drop { place, target },
                source_info: info,
            });
            return Ok(());
        }

        // Assignment or call: `place = ...`.
        let place = self.parse_place()?;
        self.expect_punct("=")?;
        if self.eat_ident("call") {
            let func = self.parse_callee()?;
            self.expect_punct("(")?;
            let mut args = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    args.push(self.parse_operand()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            self.expect_punct("->")?;
            let target = if self.eat_punct("!") {
                None
            } else {
                Some(self.expect_bb()?)
            };
            self.expect_punct(";")?;
            data.terminator = Some(Terminator {
                kind: TerminatorKind::Call {
                    func,
                    args,
                    destination: place,
                    target,
                },
                source_info: info,
            });
            return Ok(());
        }
        let rv = self.parse_rvalue()?;
        self.expect_punct(";")?;
        data.statements.push(Statement {
            kind: StatementKind::Assign(place, rv),
            source_info: info,
        });
        Ok(())
    }

    fn parse_callee(&mut self) -> Result<Callee, ParseError> {
        if self.eat_punct("(") {
            self.expect_punct("*")?;
            let l = self.expect_local()?;
            self.expect_punct(")")?;
            return Ok(Callee::Ptr(l));
        }
        let mut path = self.expect_any_ident("function name")?;
        while self.eat_punct("::") {
            let seg = self.expect_any_ident("path segment")?;
            path.push_str("::");
            path.push_str(&seg);
        }
        match path.parse::<Intrinsic>() {
            Ok(i) => Ok(Callee::Intrinsic(i)),
            Err(_) => Ok(Callee::Fn(path)),
        }
    }

    fn parse_place(&mut self) -> Result<Place, ParseError> {
        let mut place = if self.eat_punct("(") {
            self.expect_punct("*")?;
            let inner = self.parse_place()?;
            self.expect_punct(")")?;
            inner.deref()
        } else {
            Place::from_local(self.expect_local()?)
        };
        loop {
            if self.eat_punct(".") {
                let f = self.expect_int()?;
                place = place.field(f as u32);
            } else if self.eat_punct("[") {
                match self.peek() {
                    Some(TokenKind::Int(_)) => {
                        let n = self.expect_int()?;
                        place = place.const_index(n as u64);
                    }
                    _ => {
                        let l = self.expect_local()?;
                        place = place.index(l);
                    }
                }
                self.expect_punct("]")?;
            } else {
                return Ok(place);
            }
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, ParseError> {
        if self.eat_ident("const") {
            return Ok(Operand::Const(self.parse_const()?));
        }
        if self.eat_ident("move") {
            return Ok(Operand::Move(self.parse_place()?));
        }
        Ok(Operand::Copy(self.parse_place()?))
    }

    fn parse_const(&mut self) -> Result<Const, ParseError> {
        if self.eat_punct("-") {
            let v = self.expect_int()?;
            return Ok(Const::Int(-v));
        }
        if let Some(TokenKind::Int(v)) = self.peek() {
            let v = *v;
            self.pos += 1;
            return Ok(Const::Int(v));
        }
        if self.eat_ident("true") {
            return Ok(Const::Bool(true));
        }
        if self.eat_ident("false") {
            return Ok(Const::Bool(false));
        }
        if self.eat_punct("(") {
            self.expect_punct(")")?;
            return Ok(Const::Unit);
        }
        if self.eat_ident("fn") {
            let mut path = self.expect_any_ident("function name")?;
            while self.eat_punct("::") {
                let seg = self.expect_any_ident("path segment")?;
                path.push_str("::");
                path.push_str(&seg);
            }
            return Ok(Const::Fn(path));
        }
        Err(self.error_here("expected constant"))
    }

    fn parse_rvalue(&mut self) -> Result<Rvalue, ParseError> {
        if self.eat_punct("&") {
            if self.eat_ident("raw") {
                let mutbl = if self.eat_ident("mut") {
                    Mutability::Mut
                } else {
                    self.expect_ident("const")?;
                    Mutability::Not
                };
                return Ok(Rvalue::AddrOf(mutbl, self.parse_place()?));
            }
            let mutbl = if self.eat_ident("mut") {
                Mutability::Mut
            } else {
                Mutability::Not
            };
            return Ok(Rvalue::Ref(mutbl, self.parse_place()?));
        }
        if self.eat_ident("len") {
            self.expect_punct("(")?;
            let p = self.parse_place()?;
            self.expect_punct(")")?;
            return Ok(Rvalue::Len(p));
        }
        if self.eat_punct("[") {
            let mut ops = Vec::new();
            if !self.eat_punct("]") {
                loop {
                    ops.push(self.parse_operand()?);
                    if self.eat_punct("]") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            return Ok(Rvalue::Aggregate(ops));
        }
        if self.eat_punct("!") {
            return Ok(Rvalue::UnaryOp(UnOp::Not, self.parse_operand()?));
        }
        if self.eat_punct("-") {
            return Ok(Rvalue::UnaryOp(UnOp::Neg, self.parse_operand()?));
        }
        let lhs = self.parse_operand()?;
        if self.eat_ident("as") {
            let ty = self.parse_ty()?;
            return Ok(Rvalue::Cast(lhs, ty));
        }
        if self.eat_ident("offset") {
            let rhs = self.parse_operand()?;
            return Ok(Rvalue::BinaryOp(BinOp::Offset, lhs, rhs));
        }
        let op = match self.peek() {
            Some(TokenKind::Punct("+")) => Some(BinOp::Add),
            Some(TokenKind::Punct("-")) => Some(BinOp::Sub),
            Some(TokenKind::Punct("*")) => Some(BinOp::Mul),
            Some(TokenKind::Punct("/")) => Some(BinOp::Div),
            Some(TokenKind::Punct("%")) => Some(BinOp::Rem),
            Some(TokenKind::Punct("==")) => Some(BinOp::Eq),
            Some(TokenKind::Punct("!=")) => Some(BinOp::Ne),
            Some(TokenKind::Punct("<")) => Some(BinOp::Lt),
            Some(TokenKind::Punct("<=")) => Some(BinOp::Le),
            Some(TokenKind::Punct(">")) => Some(BinOp::Gt),
            Some(TokenKind::Punct(">=")) => Some(BinOp::Ge),
            Some(TokenKind::Punct("&&")) => Some(BinOp::And),
            Some(TokenKind::Punct("||")) => Some(BinOp::Or),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_operand()?;
            return Ok(Rvalue::BinaryOp(op, lhs, rhs));
        }
        Ok(Rvalue::Use(lhs))
    }

    fn parse_ty(&mut self) -> Result<Ty, ParseError> {
        if self.eat_punct("&") {
            let mutbl = if self.eat_ident("mut") {
                Mutability::Mut
            } else {
                Mutability::Not
            };
            return Ok(Ty::Ref(mutbl, Box::new(self.parse_ty()?)));
        }
        if self.eat_punct("*") {
            let mutbl = if self.eat_ident("mut") {
                Mutability::Mut
            } else {
                self.expect_ident("const")?;
                Mutability::Not
            };
            return Ok(Ty::RawPtr(mutbl, Box::new(self.parse_ty()?)));
        }
        if self.eat_punct("[") {
            let elem = self.parse_ty()?;
            self.expect_punct(";")?;
            let n = self.expect_int()?;
            self.expect_punct("]")?;
            return Ok(Ty::Array(Box::new(elem), n as u64));
        }
        if self.eat_punct("(") {
            let mut elems = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    elems.push(self.parse_ty()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            return Ok(Ty::Tuple(elems));
        }
        let name = self.expect_any_ident("type")?;
        let ty = match name.as_str() {
            "unit" => Ty::Unit,
            "bool" => Ty::Bool,
            "int" => Ty::Int,
            "Condvar" => Ty::Condvar,
            "Once" => Ty::Once,
            "AtomicInt" => Ty::AtomicInt,
            "Mutex" | "RwLock" | "Guard" | "Channel" | "JoinHandle" | "Arc" => {
                self.expect_punct("<")?;
                let inner = Box::new(self.parse_ty()?);
                self.expect_punct(">")?;
                match name.as_str() {
                    "Mutex" => Ty::Mutex(inner),
                    "RwLock" => Ty::RwLock(inner),
                    "Guard" => Ty::Guard(inner),
                    "Channel" => Ty::Channel(inner),
                    "Arc" => Ty::Arc(inner),
                    _ => Ty::JoinHandle(inner),
                }
            }
            _ => Ty::Named(name),
        };
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty;
    use crate::syntax::ProjElem;

    const SIMPLE: &str = r#"
fn add_one(_1 as x: int) -> int {
    let _2: int;

    bb0: {
        StorageLive(_2);
        _2 = _1 + const 1;
        _0 = move _2;
        StorageDead(_2);
        return;
    }
}
"#;

    #[test]
    fn parses_simple_function() {
        let body = parse_body(SIMPLE).expect("parse");
        assert_eq!(body.name, "add_one");
        assert_eq!(body.arg_count, 1);
        assert_eq!(body.locals.len(), 3);
        assert_eq!(body.blocks.len(), 1);
        assert_eq!(body.block(BasicBlock(0)).statements.len(), 4);
    }

    #[test]
    fn simple_function_round_trips() {
        let body = parse_body(SIMPLE).expect("parse");
        let printed = pretty::body_to_string(&body);
        let reparsed = parse_body(&printed).expect("reparse");
        assert_eq!(pretty::body_to_string(&reparsed), printed);
    }

    #[test]
    fn parses_locks_channels_and_calls() {
        let src = r#"
fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as g: Guard<int>;
    let _3: &Mutex<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_3);
        _3 = &_1;
        StorageLive(_2);
        _2 = call mutex::lock(_3) -> bb2;
    }

    bb2: {
        drop(_2) -> bb3;
    }

    bb3: {
        StorageDead(_2);
        StorageDead(_3);
        StorageDead(_1);
        return;
    }
}
"#;
        let body = parse_body(src).expect("parse");
        assert!(matches!(
            &body.block(BasicBlock(0)).terminator().kind,
            TerminatorKind::Call {
                func: Callee::Intrinsic(Intrinsic::MutexNew),
                ..
            }
        ));
        assert!(matches!(
            &body.block(BasicBlock(2)).terminator().kind,
            TerminatorKind::Drop { .. }
        ));
    }

    #[test]
    fn parses_unsafe_markers_and_raw_pointers() {
        let src = r#"
fn f() -> unit {
    let _1 as p: *mut int;
    let _2 as x: int;

    bb0: {
        StorageLive(_2);
        _2 = const 7;
        StorageLive(_1);
        _1 = &raw mut _2;
        unsafe (*_1) = const 9;
        return;
    }
}
"#;
        let body = parse_body(src).expect("parse");
        let stmts = &body.block(BasicBlock(0)).statements;
        assert!(stmts[4].source_info.safety.is_unsafe());
        assert!(!stmts[3].source_info.safety.is_unsafe());
        assert!(matches!(
            &stmts[3].kind,
            StatementKind::Assign(_, Rvalue::AddrOf(Mutability::Mut, _))
        ));
    }

    #[test]
    fn unsafe_fn_bodies_are_ambiently_unsafe() {
        let src = r#"
unsafe fn f(_1 as p: *mut int) -> unit {
    bb0: {
        (*_1) = const 1;
        return;
    }
}
"#;
        let body = parse_body(src).expect("parse");
        assert!(body.is_unsafe_fn);
        assert!(body.block(BasicBlock(0)).statements[0]
            .source_info
            .safety
            .is_unsafe());
    }

    #[test]
    fn parses_switch_and_program_entry() {
        let src = r#"
entry start;

fn start() -> unit {
    let _1: int;

    bb0: {
        StorageLive(_1);
        _1 = const 2;
        switchInt(_1) -> [0: bb1, 2: bb2, otherwise: bb1];
    }

    bb1: {
        unreachable;
    }

    bb2: {
        return;
    }
}
"#;
        let program = parse_program(src).expect("parse");
        assert_eq!(program.entry(), "start");
        let body = program.entry_body().unwrap();
        match &body.block(BasicBlock(0)).terminator().kind {
            TerminatorKind::SwitchInt { targets, .. } => assert_eq!(targets.len(), 2),
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse_body("fn broken( -> unit {}").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("expected"), "{err}");
    }

    #[test]
    fn rejects_statement_after_terminator() {
        let src = r#"
fn f() -> unit {
    bb0: {
        return;
        nop;
    }
}
"#;
        let err = parse_body(src).unwrap_err();
        assert!(err.message.contains("after terminator"), "{err}");
    }

    #[test]
    fn parses_nested_deref_places() {
        let src = r#"
fn f(_1 as p: *mut *mut int) -> unit {
    bb0: {
        unsafe (*(*_1)).0[3] = const 1;
        return;
    }
}
"#;
        // Exercise the place grammar: deref-of-deref, field, const index.
        let body = parse_body(src).expect("parse");
        match &body.block(BasicBlock(0)).statements[0].kind {
            StatementKind::Assign(place, _) => {
                assert_eq!(
                    place.projection,
                    vec![
                        ProjElem::Deref,
                        ProjElem::Deref,
                        ProjElem::Field(0),
                        ProjElem::ConstIndex(3)
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_table_covers_each_syntax_failure() {
        // (source, expected substring of the error message)
        let cases: &[(&str, &str)] = &[
            ("fn f() -> unit { bb0: { return } }", "expected `;`"),
            ("fn f() -> unit { bb0: { retur; } }", "expected"),
            (
                "fn f() -> unit { bb1: { return; } }",
                "blocks must be consecutive",
            ),
            (
                "fn f() -> unit { let _2: int; bb0: { return; } }",
                "local declarations must be consecutive",
            ),
            (
                "fn f(_2: int) -> unit { bb0: { return; } }",
                "argument locals must be consecutive",
            ),
            (
                "fn f() -> unit { bb0: { goto -> ; } }",
                "expected block label",
            ),
            (
                "fn f() -> unit { bb0: { _0 = const @; } }",
                "unexpected character",
            ),
            (
                "fn f() -> unit { bb0: { _0 = const 99999999999999999999; } }",
                "out of range",
            ),
            ("fn f() -> nosuch< { bb0: { return; } }", "expected"),
            (
                "fn f() -> unit { bb0: { StorageLive(x); } }",
                "expected local",
            ),
            (
                "fn f() -> unit { bb0: { switchInt(_0) -> [bb1]; } }",
                "expected",
            ),
        ];
        for (src, want) in cases {
            let err = parse_body(src).expect_err(src);
            assert!(
                err.message.contains(want),
                "source {src:?}: expected {want:?} in {err}"
            );
        }
    }

    #[test]
    fn program_with_trailing_garbage_is_rejected() {
        let err = parse_body("fn f() -> unit { bb0: { return; } } extra").unwrap_err();
        assert!(err.message.contains("trailing input"), "{err}");
    }

    #[test]
    fn parses_negative_consts_and_unary_ops() {
        let src = r#"
fn f() -> int {
    let _1: int;
    let _2: bool;

    bb0: {
        _1 = const -5;
        _2 = !const true;
        _0 = -_1;
        return;
    }
}
"#;
        let body = parse_body(src).expect("parse");
        let stmts = &body.block(BasicBlock(0)).statements;
        assert!(matches!(
            &stmts[0].kind,
            StatementKind::Assign(_, Rvalue::Use(Operand::Const(Const::Int(-5))))
        ));
        assert!(matches!(
            &stmts[1].kind,
            StatementKind::Assign(_, Rvalue::UnaryOp(UnOp::Not, _))
        ));
        assert!(matches!(
            &stmts[2].kind,
            StatementKind::Assign(_, Rvalue::UnaryOp(UnOp::Neg, _))
        ));
    }
}
