//! Whole-program container: a set of function bodies plus an entry point.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::syntax::Body;

/// A function name (unique key within a [`Program`]).
pub type FnName = String;

/// A complete program: named function bodies and an entry function.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// All functions, keyed (and iterated) by name.
    functions: BTreeMap<FnName, Body>,
    /// Name of the entry function; defaults to `main`.
    entry: FnName,
}

impl Program {
    /// An empty program whose entry point is `main`.
    pub fn new() -> Program {
        Program {
            functions: BTreeMap::new(),
            entry: "main".to_owned(),
        }
    }

    /// Builds a program from an iterator of bodies, entry `main`.
    pub fn from_bodies(bodies: impl IntoIterator<Item = Body>) -> Program {
        let mut p = Program::new();
        for b in bodies {
            p.insert(b);
        }
        p
    }

    /// Inserts (or replaces) a function body, returning the previous body
    /// with the same name if any.
    pub fn insert(&mut self, body: Body) -> Option<Body> {
        self.functions.insert(body.name.clone(), body)
    }

    /// Sets the entry function name.
    pub fn set_entry(&mut self, entry: impl Into<FnName>) {
        self.entry = entry.into();
    }

    /// The entry function name.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The entry function body, if present.
    pub fn entry_body(&self) -> Option<&Body> {
        self.functions.get(&self.entry)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Body> {
        self.functions.get(name)
    }

    /// Iterates over `(name, body)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Body)> {
        self.functions.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over bodies in name order.
    pub fn bodies(&self) -> impl Iterator<Item = &Body> {
        self.functions.values()
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` if the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::program_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BodyBuilder;
    use crate::ty::Ty;

    fn trivial(name: &str) -> Body {
        let mut b = BodyBuilder::new(name, 0, Ty::Unit);
        b.ret();
        b.finish()
    }

    #[test]
    fn insert_and_lookup() {
        let mut p = Program::new();
        assert!(p.is_empty());
        assert!(p.insert(trivial("main")).is_none());
        assert!(p.insert(trivial("helper")).is_none());
        assert_eq!(p.len(), 2);
        assert!(p.function("helper").is_some());
        assert!(p.function("missing").is_none());
        assert_eq!(p.entry(), "main");
        assert!(p.entry_body().is_some());
    }

    #[test]
    fn replacing_a_body_returns_the_old_one() {
        let mut p = Program::new();
        p.insert(trivial("f"));
        let old = p.insert(trivial("f"));
        assert!(old.is_some());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn entry_can_be_redirected() {
        let mut p = Program::from_bodies([trivial("start"), trivial("main")]);
        p.set_entry("start");
        assert_eq!(p.entry(), "start");
        assert_eq!(p.entry_body().unwrap().name, "start");
    }

    #[test]
    fn iteration_is_name_ordered() {
        let p = Program::from_bodies([trivial("zebra"), trivial("apple"), trivial("main")]);
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["apple", "main", "zebra"]);
    }
}
