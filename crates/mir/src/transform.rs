//! Cleanup transformations over bodies.
//!
//! These are the standard tidy-up passes a MIR pipeline runs between
//! analyses: dropping `Nop`s, threading `Goto` chains, and removing
//! unreachable blocks. All passes preserve semantics (the integration
//! suite checks corpus programs behave identically before and after) and
//! leave the body valid.

use std::collections::BTreeMap;

use crate::syntax::{BasicBlock, Body, StatementKind, TerminatorKind};

/// Removes every `Nop` statement. Returns the number removed.
pub fn remove_nops(body: &mut Body) -> usize {
    let mut removed = 0;
    for block in &mut body.blocks {
        let before = block.statements.len();
        block
            .statements
            .retain(|s| !matches!(s.kind, StatementKind::Nop));
        removed += before - block.statements.len();
    }
    removed
}

/// Redirects jumps through empty forwarding blocks (blocks with no
/// statements whose terminator is `Goto`). Returns the number of edges
/// rewritten. Forwarding cycles are left untouched.
pub fn thread_gotos(body: &mut Body) -> usize {
    // Resolve each block to its final forwarding target.
    let n = body.blocks.len();
    let forward_of = |body: &Body, bb: BasicBlock| -> Option<BasicBlock> {
        let data = body.block(bb);
        if !data.statements.is_empty() {
            return None;
        }
        match data.terminator.as_ref().map(|t| &t.kind) {
            Some(TerminatorKind::Goto { target }) => Some(*target),
            _ => None,
        }
    };
    let mut resolved: BTreeMap<BasicBlock, BasicBlock> = BTreeMap::new();
    for i in 0..n as u32 {
        let start = BasicBlock(i);
        let mut cur = start;
        let mut hops = 0;
        while let Some(next) = forward_of(body, cur) {
            cur = next;
            hops += 1;
            if hops > n {
                cur = start; // cycle: give up on this chain
                break;
            }
        }
        if cur != start {
            resolved.insert(start, cur);
        }
    }
    let mut rewritten = 0;
    for block in &mut body.blocks {
        let Some(term) = block.terminator.as_mut() else {
            continue;
        };
        let mut rewrite = |t: &mut BasicBlock| {
            if let Some(&r) = resolved.get(t) {
                if r != *t {
                    *t = r;
                    rewritten += 1;
                }
            }
        };
        match &mut term.kind {
            TerminatorKind::Goto { target } => rewrite(target),
            TerminatorKind::SwitchInt {
                targets, otherwise, ..
            } => {
                for (_, t) in targets {
                    rewrite(t);
                }
                rewrite(otherwise);
            }
            TerminatorKind::Call { target, .. } => {
                if let Some(t) = target {
                    rewrite(t);
                }
            }
            TerminatorKind::Drop { target, .. } => rewrite(target),
            TerminatorKind::Return | TerminatorKind::Unreachable => {}
        }
    }
    rewritten
}

/// Deletes blocks unreachable from the entry and renumbers the rest.
/// Returns the number of blocks removed.
pub fn remove_unreachable_blocks(body: &mut Body) -> usize {
    let n = body.blocks.len();
    // Reachability from bb0.
    let mut seen = vec![false; n];
    let mut stack = vec![BasicBlock::ENTRY];
    while let Some(bb) = stack.pop() {
        if seen[bb.index()] {
            continue;
        }
        seen[bb.index()] = true;
        if let Some(term) = &body.blocks[bb.index()].terminator {
            for s in term.kind.successors() {
                if !seen[s.index()] {
                    stack.push(s);
                }
            }
        }
    }
    if seen.iter().all(|&s| s) {
        return 0;
    }
    // Build the renumbering and compact the block list.
    let mut remap: BTreeMap<BasicBlock, BasicBlock> = BTreeMap::new();
    let mut kept = Vec::new();
    for (i, block) in body.blocks.drain(..).enumerate() {
        if seen[i] {
            remap.insert(BasicBlock(i as u32), BasicBlock(kept.len() as u32));
            kept.push(block);
        }
    }
    let removed = n - kept.len();
    body.blocks = kept;
    for block in &mut body.blocks {
        if let Some(term) = block.terminator.as_mut() {
            let rewrite = |t: &mut BasicBlock| {
                *t = *remap
                    .get(t)
                    .expect("successor of reachable block is reachable");
            };
            match &mut term.kind {
                TerminatorKind::Goto { target } => rewrite(target),
                TerminatorKind::SwitchInt {
                    targets, otherwise, ..
                } => {
                    for (_, t) in targets {
                        rewrite(t);
                    }
                    rewrite(otherwise);
                }
                TerminatorKind::Call { target, .. } => {
                    if let Some(t) = target {
                        rewrite(t);
                    }
                }
                TerminatorKind::Drop { target, .. } => rewrite(target),
                TerminatorKind::Return | TerminatorKind::Unreachable => {}
            }
        }
    }
    removed
}

/// Runs all cleanup passes to a fixpoint. Returns the total change count.
pub fn simplify(body: &mut Body) -> usize {
    let mut total = 0;
    loop {
        let changed = remove_nops(body) + thread_gotos(body) + remove_unreachable_blocks(body);
        total += changed;
        if changed == 0 {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BodyBuilder;
    use crate::syntax::{Operand, Rvalue};
    use crate::ty::Ty;
    use crate::validate::validate_body;

    #[test]
    fn nops_are_removed() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.nop();
        b.nop();
        b.assign(crate::Place::RETURN, Rvalue::Use(Operand::int(0)));
        b.ret();
        let mut body = b.finish();
        assert_eq!(remove_nops(&mut body), 2);
        assert_eq!(body.blocks[0].statements.len(), 1);
        assert!(validate_body(&body).is_ok());
    }

    #[test]
    fn goto_chains_are_threaded() {
        // bb0 -> bb1 (empty) -> bb2 (empty) -> bb3(return)
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let bb1 = b.new_block();
        let bb2 = b.new_block();
        let bb3 = b.new_block();
        b.goto(bb1);
        b.switch_to(bb1);
        b.goto(bb2);
        b.switch_to(bb2);
        b.goto(bb3);
        b.switch_to(bb3);
        b.ret();
        let mut body = b.finish();
        assert!(thread_gotos(&mut body) >= 1);
        match &body.block(BasicBlock::ENTRY).terminator().kind {
            TerminatorKind::Goto { target } => assert_eq!(*target, bb3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(validate_body(&body).is_ok());
    }

    #[test]
    fn goto_cycles_are_left_alone() {
        // bb0 -> bb1 <-> bb2 (cycle of empty gotos).
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let bb1 = b.new_block();
        let bb2 = b.new_block();
        b.goto(bb1);
        b.switch_to(bb1);
        b.goto(bb2);
        b.switch_to(bb2);
        b.goto(bb1);
        let mut body = b.finish();
        let before = body.clone();
        thread_gotos(&mut body);
        // The cycle must not be collapsed into nonsense.
        assert!(validate_body(&body).is_ok());
        assert_eq!(body.blocks.len(), before.blocks.len());
    }

    #[test]
    fn unreachable_blocks_are_dropped_and_renumbered() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.ret();
        let dead = b.new_block();
        b.switch_to(dead);
        let dead2 = b.new_block();
        b.goto(dead2);
        b.switch_to(dead2);
        b.ret();
        let mut body = b.finish();
        assert_eq!(remove_unreachable_blocks(&mut body), 2);
        assert_eq!(body.blocks.len(), 1);
        assert!(validate_body(&body).is_ok());
    }

    #[test]
    fn simplify_reaches_a_fixpoint() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        b.nop();
        let fwd = b.new_block();
        let end = b.new_block();
        let dead = b.new_block();
        b.goto(fwd);
        b.switch_to(fwd);
        b.goto(end);
        b.switch_to(end);
        b.ret();
        b.switch_to(dead);
        b.ret();
        let mut body = b.finish();
        let changed = simplify(&mut body);
        assert!(changed >= 3, "{changed}");
        assert_eq!(simplify(&mut body), 0, "fixpoint");
        assert!(validate_body(&body).is_ok());
        // Entry now returns via one hop at most.
        assert!(body.blocks.len() <= 2);
    }

    #[test]
    fn switch_targets_are_threaded_too() {
        let mut b = BodyBuilder::new("f", 0, Ty::Unit);
        let fwd = b.new_block();
        let end = b.new_block();
        b.switch_int(Operand::int(1), vec![(1, fwd)], end);
        b.switch_to(fwd);
        b.goto(end);
        b.switch_to(end);
        b.ret();
        let mut body = b.finish();
        thread_gotos(&mut body);
        match &body.block(BasicBlock::ENTRY).terminator().kind {
            TerminatorKind::SwitchInt { targets, .. } => {
                assert_eq!(targets[0].1, end);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
