//! Modelled library intrinsics.
//!
//! Real Rust programs in the study misuse `std` synchronization and memory
//! APIs; our IR models those APIs as *intrinsics* — callees with well-known
//! names and semantics shared by the static analyses (`rstudy-analysis`,
//! `rstudy-core`) and the dynamic interpreter (`rstudy-interp`).
//!
//! Naming follows the `module::function` convention of the textual format,
//! e.g. `mutex::lock` or `ptr::read`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A modelled standard-library operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Intrinsic {
    // --- heap memory -----------------------------------------------------
    /// `alloc(n)` — allocate `n` cells, returning a raw pointer.
    Alloc,
    /// `dealloc(ptr)` — free an allocation.
    Dealloc,
    /// `ptr::read(ptr)` — read through a raw pointer *without* moving
    /// (the double-free pattern of the study duplicates ownership this way).
    PtrRead,
    /// `ptr::write(ptr, v)` — write through a raw pointer without dropping
    /// the previous value.
    PtrWrite,
    /// `ptr::copy_nonoverlapping(src, dst, n)` — unsafe memcpy.
    PtrCopyNonoverlapping,
    /// `mem::drop(v)` — explicitly drop a value (releases lock guards).
    MemDrop,
    /// `mem::forget(v)` — discard a value without running its destructor.
    MemForget,
    /// `mem::uninitialized()` — produce an uninitialized value.
    MemUninitialized,

    // --- locks ------------------------------------------------------------
    /// `mutex::new(v)` — create a mutex.
    MutexNew,
    /// `mutex::lock(&m)` — acquire; returns a guard released on drop.
    MutexLock,
    /// `rwlock::new(v)` — create a reader-writer lock.
    RwLockNew,
    /// `rwlock::read(&l)` — acquire shared; returns a guard.
    RwLockRead,
    /// `rwlock::write(&l)` — acquire exclusive; returns a guard.
    RwLockWrite,

    // --- condition variables ----------------------------------------------
    /// `condvar::new()`.
    CondvarNew,
    /// `condvar::wait(&cv, guard)` — atomically release and reacquire.
    CondvarWait,
    /// `condvar::notify_one(&cv)`.
    CondvarNotifyOne,
    /// `condvar::notify_all(&cv)`.
    CondvarNotifyAll,

    // --- channels -----------------------------------------------------------
    /// `channel::unbounded()` — create an unbounded channel.
    ChannelUnbounded,
    /// `channel::bounded(cap)` — create a bounded channel.
    ChannelBounded,
    /// `channel::send(&ch, v)` — send; blocks when a bounded buffer is full.
    ChannelSend,
    /// `channel::recv(&ch)` — receive; blocks on an empty channel.
    ChannelRecv,

    // --- once ----------------------------------------------------------------
    /// `once::new()`.
    OnceNew,
    /// `once::call_once(&o, fn)` — run the closure exactly once.
    OnceCallOnce,

    // --- atomics ---------------------------------------------------------
    /// `atomic::new(v)`.
    AtomicNew,
    /// `atomic::load(&a)`.
    AtomicLoad,
    /// `atomic::store(&a, v)`.
    AtomicStore,
    /// `atomic::compare_and_swap(&a, old, new)` — returns the previous value.
    AtomicCas,
    /// `atomic::fetch_add(&a, v)` — returns the previous value.
    AtomicFetchAdd,

    // --- reference counting -------------------------------------------------
    /// `arc::new(v)` — allocate a reference-counted shared value.
    ArcNew,
    /// `arc::clone(a)` — bump the count, return another handle.
    ArcClone,

    // --- threads -----------------------------------------------------------
    /// `thread::spawn(fn, arg)` — start a thread; returns a join handle.
    ThreadSpawn,
    /// `thread::join(handle)` — wait for a thread and take its result.
    ThreadJoin,
    /// `thread::yield_now()` — scheduling hint.
    ThreadYield,

    // --- misc ---------------------------------------------------------------
    /// `process::abort()` — terminate the program.
    Abort,
    /// `ffi::extern_call(..)` — an opaque call into non-Rust code.
    ExternCall,
}

impl Intrinsic {
    /// All intrinsics, for exhaustive table-driven tests.
    pub const ALL: &'static [Intrinsic] = &[
        Intrinsic::Alloc,
        Intrinsic::Dealloc,
        Intrinsic::PtrRead,
        Intrinsic::PtrWrite,
        Intrinsic::PtrCopyNonoverlapping,
        Intrinsic::MemDrop,
        Intrinsic::MemForget,
        Intrinsic::MemUninitialized,
        Intrinsic::MutexNew,
        Intrinsic::MutexLock,
        Intrinsic::RwLockNew,
        Intrinsic::RwLockRead,
        Intrinsic::RwLockWrite,
        Intrinsic::CondvarNew,
        Intrinsic::CondvarWait,
        Intrinsic::CondvarNotifyOne,
        Intrinsic::CondvarNotifyAll,
        Intrinsic::ChannelUnbounded,
        Intrinsic::ChannelBounded,
        Intrinsic::ChannelSend,
        Intrinsic::ChannelRecv,
        Intrinsic::OnceNew,
        Intrinsic::OnceCallOnce,
        Intrinsic::AtomicNew,
        Intrinsic::AtomicLoad,
        Intrinsic::AtomicStore,
        Intrinsic::AtomicCas,
        Intrinsic::AtomicFetchAdd,
        Intrinsic::ArcNew,
        Intrinsic::ArcClone,
        Intrinsic::ThreadSpawn,
        Intrinsic::ThreadJoin,
        Intrinsic::ThreadYield,
        Intrinsic::Abort,
        Intrinsic::ExternCall,
    ];

    /// The `module::function` name used by the textual format.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Alloc => "alloc",
            Intrinsic::Dealloc => "dealloc",
            Intrinsic::PtrRead => "ptr::read",
            Intrinsic::PtrWrite => "ptr::write",
            Intrinsic::PtrCopyNonoverlapping => "ptr::copy_nonoverlapping",
            Intrinsic::MemDrop => "mem::drop",
            Intrinsic::MemForget => "mem::forget",
            Intrinsic::MemUninitialized => "mem::uninitialized",
            Intrinsic::MutexNew => "mutex::new",
            Intrinsic::MutexLock => "mutex::lock",
            Intrinsic::RwLockNew => "rwlock::new",
            Intrinsic::RwLockRead => "rwlock::read",
            Intrinsic::RwLockWrite => "rwlock::write",
            Intrinsic::CondvarNew => "condvar::new",
            Intrinsic::CondvarWait => "condvar::wait",
            Intrinsic::CondvarNotifyOne => "condvar::notify_one",
            Intrinsic::CondvarNotifyAll => "condvar::notify_all",
            Intrinsic::ChannelUnbounded => "channel::unbounded",
            Intrinsic::ChannelBounded => "channel::bounded",
            Intrinsic::ChannelSend => "channel::send",
            Intrinsic::ChannelRecv => "channel::recv",
            Intrinsic::OnceNew => "once::new",
            Intrinsic::OnceCallOnce => "once::call_once",
            Intrinsic::AtomicNew => "atomic::new",
            Intrinsic::AtomicLoad => "atomic::load",
            Intrinsic::AtomicStore => "atomic::store",
            Intrinsic::AtomicCas => "atomic::compare_and_swap",
            Intrinsic::AtomicFetchAdd => "atomic::fetch_add",
            Intrinsic::ArcNew => "arc::new",
            Intrinsic::ArcClone => "arc::clone",
            Intrinsic::ThreadSpawn => "thread::spawn",
            Intrinsic::ThreadJoin => "thread::join",
            Intrinsic::ThreadYield => "thread::yield_now",
            Intrinsic::Abort => "process::abort",
            Intrinsic::ExternCall => "ffi::extern_call",
        }
    }

    /// Returns `true` if calling this intrinsic requires an unsafe context
    /// in the modelled surface language.
    pub fn is_unsafe(self) -> bool {
        matches!(
            self,
            Intrinsic::Alloc
                | Intrinsic::Dealloc
                | Intrinsic::PtrRead
                | Intrinsic::PtrWrite
                | Intrinsic::PtrCopyNonoverlapping
                | Intrinsic::MemUninitialized
                | Intrinsic::ExternCall
        )
    }

    /// Returns `true` for the lock-acquiring intrinsics whose returned
    /// guards the double-lock detector tracks.
    pub fn acquires_lock(self) -> bool {
        matches!(
            self,
            Intrinsic::MutexLock | Intrinsic::RwLockRead | Intrinsic::RwLockWrite
        )
    }

    /// Returns `true` if this operation can block the calling thread.
    pub fn may_block(self) -> bool {
        matches!(
            self,
            Intrinsic::MutexLock
                | Intrinsic::RwLockRead
                | Intrinsic::RwLockWrite
                | Intrinsic::CondvarWait
                | Intrinsic::ChannelSend
                | Intrinsic::ChannelRecv
                | Intrinsic::OnceCallOnce
                | Intrinsic::ThreadJoin
        )
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a name does not denote an intrinsic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownIntrinsic(pub String);

impl fmt::Display for UnknownIntrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown intrinsic `{}`", self.0)
    }
}

impl std::error::Error for UnknownIntrinsic {}

impl FromStr for Intrinsic {
    type Err = UnknownIntrinsic;

    fn from_str(s: &str) -> Result<Intrinsic, UnknownIntrinsic> {
        Intrinsic::ALL
            .iter()
            .copied()
            .find(|i| i.name() == s)
            .ok_or_else(|| UnknownIntrinsic(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_for_all_intrinsics() {
        for &i in Intrinsic::ALL {
            let parsed: Intrinsic = i.name().parse().expect("round trip");
            assert_eq!(parsed, i, "{}", i.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Intrinsic::ALL.iter().map(|i| i.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Intrinsic::ALL.len());
    }

    #[test]
    fn unknown_name_errors() {
        let err = "mutex::unlock".parse::<Intrinsic>().unwrap_err();
        assert_eq!(err.0, "mutex::unlock");
        assert!(err.to_string().contains("mutex::unlock"));
    }

    #[test]
    fn unsafe_classification_matches_surface_rust() {
        assert!(Intrinsic::PtrRead.is_unsafe());
        assert!(Intrinsic::Dealloc.is_unsafe());
        assert!(!Intrinsic::MutexLock.is_unsafe());
        assert!(!Intrinsic::MemDrop.is_unsafe());
    }

    #[test]
    fn lock_acquisition_and_blocking() {
        assert!(Intrinsic::MutexLock.acquires_lock());
        assert!(Intrinsic::RwLockWrite.acquires_lock());
        assert!(!Intrinsic::CondvarWait.acquires_lock());
        assert!(Intrinsic::CondvarWait.may_block());
        assert!(Intrinsic::ChannelRecv.may_block());
        assert!(!Intrinsic::AtomicLoad.may_block());
    }
}
