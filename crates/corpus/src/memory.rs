//! Memory-safety bug patterns (§5.1, Table 2), each with the paper shape
//! noted, plus safe variants.

use crate::{CorpusEntry, DynamicExpectation};

/// Use after free via `StorageDead` before the dereference — the basic
/// lifetime misjudgement behind most of the study's UAF bugs.
pub const UAF_STORAGE_DEAD: CorpusEntry = CorpusEntry {
    name: "uaf_storage_dead",
    description: "pointer dereferenced after its target's storage ends (§5.1 use-after-free)",
    static_bugs: &["use-after-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as x: int;
    let _2 as p: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = const 42;
        StorageLive(_2);
        _2 = &raw mut _1;
        StorageDead(_1);
        unsafe _0 = (*_2);
        return;
    }
}
"#,
};

/// The paper's Fig. 7 (RustSec `sign`): object dropped at the end of a
/// match arm while a raw pointer into it lives on.
pub const UAF_FIG7_DROP: CorpusEntry = CorpusEntry {
    name: "uaf_fig7_drop",
    description: "Fig. 7: BioSlice dropped while its address is still used by CMS_sign",
    static_bugs: &["use-after-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as bio: BioSlice;
    let _2 as p: *const BioSlice;

    bb0: {
        StorageLive(_1);
        _1 = const 7;
        StorageLive(_2);
        _2 = &raw const _1;
        drop(_1) -> bb1;
    }

    bb1: {
        unsafe _0 = (*_2);
        return;
    }
}
"#,
};

/// Use after free on the heap: dealloc then deref.
pub const UAF_HEAP: CorpusEntry = CorpusEntry {
    name: "uaf_heap",
    description: "heap block freed, then read through a stale pointer",
    static_bugs: &["use-after-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as p: *mut int;
    let _2: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        unsafe _1 = call alloc(const 1) -> bb1;
    }

    bb1: {
        unsafe _2 = call ptr::write(_1, const 5) -> bb2;
    }

    bb2: {
        unsafe _2 = call dealloc(_1) -> bb3;
    }

    bb3: {
        unsafe _0 = (*_1);
        return;
    }
}
"#,
};

/// The fixed variant (paper §5.2 "adjust lifetime"): the use precedes the
/// end of the pointee's lifetime.
pub const UAF_FIXED: CorpusEntry = CorpusEntry {
    name: "uaf_fixed",
    description: "fixed Fig. 7: lifetime extended past the last use",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> int {
    let _1 as bio: BioSlice;
    let _2 as p: *const BioSlice;

    bb0: {
        StorageLive(_1);
        _1 = const 7;
        StorageLive(_2);
        _2 = &raw const _1;
        unsafe _0 = (*_2);
        drop(_1) -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// Heap block deallocated twice along one path.
pub const DOUBLE_FREE_DEALLOC: CorpusEntry = CorpusEntry {
    name: "double_free_dealloc",
    description: "same allocation deallocated twice (§5.1 double free)",
    static_bugs: &["double-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> unit {
    let _1 as p: *mut int;
    let _2: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        unsafe _1 = call alloc(const 1) -> bb1;
    }

    bb1: {
        unsafe _2 = call dealloc(_1) -> bb2;
    }

    bb2: {
        unsafe _2 = call dealloc(_1) -> bb3;
    }

    bb3: {
        return;
    }
}
"#,
};

/// The paper's Rust-unique double free: `t2 = ptr::read(&t1)` duplicates
/// ownership, then both owners are dropped by safe code. A value-level
/// dynamic model (ours, like early Miri) runs this "cleanly" — only the
/// static ownership analysis sees it, which is the point of §7.1.
pub const DOUBLE_FREE_PTR_READ: CorpusEntry = CorpusEntry {
    name: "double_free_ptr_read",
    description: "ptr::read duplicates ownership; both owners dropped (unsafe->safe, Table 2)",
    static_bugs: &["double-free"],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> unit {
    let _1 as t1: T;
    let _2 as t2: T;
    let _3 as r: *const T;

    bb0: {
        StorageLive(_1);
        _1 = const 1;
        StorageLive(_3);
        _3 = &raw const _1;
        StorageLive(_2);
        unsafe _2 = call ptr::read(_3) -> bb1;
    }

    bb1: {
        drop(_2) -> bb2;
    }

    bb2: {
        drop(_1) -> bb3;
    }

    bb3: {
        return;
    }
}
"#,
};

/// The paper's fix: move ownership (`t2 = t1`) instead of ptr::read.
pub const DOUBLE_FREE_FIXED: CorpusEntry = CorpusEntry {
    name: "double_free_fixed",
    description: "fixed: ownership moved with t2 = t1, single drop",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> unit {
    let _1 as t1: T;
    let _2 as t2: T;

    bb0: {
        StorageLive(_1);
        _1 = const 1;
        StorageLive(_2);
        _2 = move _1;
        drop(_2) -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// The paper's Fig. 6 (Redox `_fdopen`): `*f = FILE{..}` drops the
/// uninitialized previous value.
pub const INVALID_FREE_FIG6: CorpusEntry = CorpusEntry {
    name: "invalid_free_fig6",
    description: "Fig. 6: assignment into fresh alloc drops garbage (invalid free)",
    static_bugs: &["invalid-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
unsafe fn _fdopen() -> unit {
    let _1 as f: *mut FILE;

    bb0: {
        StorageLive(_1);
        _1 = call alloc(const 2) -> bb1;
    }

    bb1: {
        (*_1) = const 0;
        return;
    }
}

fn main() -> unit {
    bb0: {
        _0 = call _fdopen() -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// The paper's fix for Fig. 6: `ptr::write` does not drop.
pub const INVALID_FREE_FIXED: CorpusEntry = CorpusEntry {
    name: "invalid_free_fixed",
    description: "fixed Fig. 6: ptr::write skips the drop of garbage",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
unsafe fn _fdopen() -> unit {
    let _1 as f: *mut FILE;
    let _2: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        _1 = call alloc(const 2) -> bb1;
    }

    bb1: {
        _2 = call ptr::write(_1, const 0) -> bb2;
    }

    bb2: {
        return;
    }
}

fn main() -> unit {
    bb0: {
        _0 = call _fdopen() -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// Uninitialized buffer created in unsafe code, read by safe code —
/// the "unsafe → safe" shape all seven §5.1 uninitialized reads share.
pub const UNINIT_READ_HEAP: CorpusEntry = CorpusEntry {
    name: "uninit_read_heap",
    description: "uninitialized heap buffer read by safe code (unsafe->safe)",
    static_bugs: &["uninit-read"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as p: *mut int;

    bb0: {
        StorageLive(_1);
        unsafe _1 = call alloc(const 4) -> bb1;
    }

    bb1: {
        _0 = (*_1);
        return;
    }
}
"#,
};

/// A local read on a path that skipped its initialization.
pub const UNINIT_READ_BRANCH: CorpusEntry = CorpusEntry {
    name: "uninit_read_branch",
    description: "only one branch initializes the local before the read",
    static_bugs: &["uninit-read"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as x: int;
    let _2 as c: bool;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        _2 = const false;
        switchInt(_2) -> [1: bb1, otherwise: bb2];
    }

    bb1: {
        _1 = const 9;
        goto -> bb2;
    }

    bb2: {
        _0 = _1;
        return;
    }
}
"#,
};

/// The fixed variant: the buffer is written before any read.
pub const UNINIT_FIXED: CorpusEntry = CorpusEntry {
    name: "uninit_fixed",
    description: "fixed: buffer fully initialized before the read",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> int {
    let _1 as p: *mut int;
    let _2: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        unsafe _1 = call alloc(const 1) -> bb1;
    }

    bb1: {
        unsafe _2 = call ptr::write(_1, const 3) -> bb2;
    }

    bb2: {
        _0 = (*_1);
        return;
    }
}
"#,
};

/// Null produced in safe code (one match arm), dereferenced in unsafe code
/// — the §5.1 null-dereference shape.
pub const NULL_DEREF_MATCH: CorpusEntry = CorpusEntry {
    name: "null_deref_match",
    description: "match arm yields null; later unsafe deref (§5.1 null deref)",
    static_bugs: &["null-deref"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as x: int;
    let _2 as p: *mut int;
    let _3 as has_data: bool;

    bb0: {
        StorageLive(_1);
        _1 = const 5;
        StorageLive(_2);
        StorageLive(_3);
        _3 = const false;
        switchInt(_3) -> [1: bb1, otherwise: bb2];
    }

    bb1: {
        _2 = &raw mut _1;
        goto -> bb3;
    }

    bb2: {
        _2 = const 0 as *mut int;
        goto -> bb3;
    }

    bb3: {
        unsafe _0 = (*_2);
        return;
    }
}
"#,
};

/// The fixed variant: the pointer is unconditionally valid.
pub const NULL_FIXED: CorpusEntry = CorpusEntry {
    name: "null_fixed",
    description: "fixed: pointer always re-bound to valid memory before deref",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> int {
    let _1 as x: int;
    let _2 as p: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = const 5;
        StorageLive(_2);
        _2 = const 0 as *mut int;
        _2 = &raw mut _1;
        unsafe _0 = (*_2);
        return;
    }
}
"#,
};

/// The dominant §5.1 buffer-overflow shape: index computed in safe code,
/// unchecked access in unsafe code.
pub const BUFFER_OVERFLOW_COMPUTED: CorpusEntry = CorpusEntry {
    name: "buffer_overflow_computed",
    description: "17-of-21 shape: safe code computes a wrong index; unsafe code indexes",
    static_bugs: &["buffer-overflow"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as buf: [int; 4];
    let _2 as i: int;

    bb0: {
        StorageLive(_1);
        _1 = [const 10, const 11, const 12, const 13];
        StorageLive(_2);
        _2 = const 2 + const 3;
        unsafe _0 = _1[_2];
        return;
    }
}
"#,
};

/// Pointer-offset overflow: `get_unchecked`-style pointer arithmetic past
/// the end.
pub const BUFFER_OVERFLOW_OFFSET: CorpusEntry = CorpusEntry {
    name: "buffer_overflow_offset",
    description: "pointer offset one past the end, then dereferenced",
    static_bugs: &["buffer-overflow"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as buf: [int; 4];
    let _2 as p: *mut int;
    let _3 as q: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = [const 1, const 2, const 3, const 4];
        StorageLive(_2);
        _2 = &raw mut _1;
        StorageLive(_3);
        unsafe _3 = _2 offset const 4;
        unsafe _0 = (*_3);
        return;
    }
}
"#,
};

/// The fixed variant: in-bounds access.
pub const BUFFER_FIXED: CorpusEntry = CorpusEntry {
    name: "buffer_fixed",
    description: "fixed: boundary-checked index stays in bounds",
    static_bugs: &[],
    dynamic: DynamicExpectation::ReturnsInt(13),
    source: r#"
fn main() -> int {
    let _1 as buf: [int; 4];
    let _2 as i: int;

    bb0: {
        StorageLive(_1);
        _1 = [const 10, const 11, const 12, const 13];
        StorageLive(_2);
        _2 = const 3;
        _0 = _1[_2];
        return;
    }
}
"#,
};

/// §5.1's "initialize buffers incorrectly, e.g., using memcpy with wrong
/// input parameters": the copy only fills part of the destination, and a
/// later read hits the uninitialized tail. Our field-insensitive static
/// heap model treats the whole allocation as written (a documented
/// precision gap); the cell-level dynamic model catches it.
pub const UNINIT_MEMCPY_SHORT: CorpusEntry = CorpusEntry {
    name: "uninit_memcpy_short",
    description: "memcpy with wrong length leaves the tail uninitialized (§5.1)",
    static_bugs: &[],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as src: *mut int;
    let _2 as dst: *mut int;
    let _3 as p: *mut int;
    let _4: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        StorageLive(_3);
        StorageLive(_4);
        unsafe _1 = call alloc(const 4) -> bb1;
    }

    bb1: {
        unsafe _2 = call alloc(const 4) -> bb2;
    }

    bb2: {
        unsafe _4 = call ptr::write(_1, const 1) -> bb3;
    }

    bb3: {
        unsafe _3 = _1 offset const 1;
        unsafe _4 = call ptr::write(_3, const 2) -> bb4;
    }

    bb4: {
        unsafe _4 = call ptr::copy_nonoverlapping(_1, _2, const 2) -> bb5;
    }

    bb5: {
        unsafe _3 = _2 offset const 3;
        unsafe _0 = (*_3);
        return;
    }
}
"#,
};

/// The fixed variant: the copy covers the whole destination before the
/// read of its last element.
pub const MEMCPY_FULL: CorpusEntry = CorpusEntry {
    name: "memcpy_full",
    description: "fixed: memcpy length covers every cell that is later read",
    static_bugs: &[],
    dynamic: DynamicExpectation::ReturnsInt(2),
    source: r#"
fn main() -> int {
    let _1 as src: *mut int;
    let _2 as dst: *mut int;
    let _3 as p: *mut int;
    let _4: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        StorageLive(_3);
        StorageLive(_4);
        unsafe _1 = call alloc(const 2) -> bb1;
    }

    bb1: {
        unsafe _2 = call alloc(const 2) -> bb2;
    }

    bb2: {
        unsafe _4 = call ptr::write(_1, const 1) -> bb3;
    }

    bb3: {
        unsafe _3 = _1 offset const 1;
        unsafe _4 = call ptr::write(_3, const 2) -> bb4;
    }

    bb4: {
        unsafe _4 = call ptr::copy_nonoverlapping(_1, _2, const 2) -> bb5;
    }

    bb5: {
        unsafe _3 = _2 offset const 1;
        unsafe _0 = (*_3);
        return;
    }
}
"#,
};

/// The Arc variant of the ptr::read double free: duplicating the *handle*
/// without bumping the count means the second drop underflows — here the
/// dynamic model catches it too (unlike the opaque-struct variant), because
/// the reference count makes the shared resource explicit.
pub const DOUBLE_FREE_ARC: CorpusEntry = CorpusEntry {
    name: "double_free_arc",
    description: "ptr::read duplicates an Arc handle; both drops free the allocation",
    static_bugs: &["double-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> unit {
    let _1 as a1: Arc<int>;
    let _2 as a2: Arc<int>;
    let _3 as r: *const Arc<int>;

    bb0: {
        StorageLive(_1);
        _1 = call arc::new(const 9) -> bb1;
    }

    bb1: {
        StorageLive(_3);
        _3 = &raw const _1;
        StorageLive(_2);
        unsafe _2 = call ptr::read(_3) -> bb2;
    }

    bb2: {
        drop(_2) -> bb3;
    }

    bb3: {
        drop(_1) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// Correct Arc sharing: clone bumps the count, each owner drops once, the
/// shared value survives until the last drop (Table 4's dominant safe
/// sharing mechanism).
pub const ARC_CLONE_CLEAN: CorpusEntry = CorpusEntry {
    name: "arc_clone_clean",
    description: "arc::clone + two drops: refcount discipline keeps it clean",
    static_bugs: &[],
    dynamic: DynamicExpectation::ReturnsInt(9),
    source: r#"
fn main() -> int {
    let _1 as a1: Arc<int>;
    let _2 as a2: Arc<int>;

    bb0: {
        StorageLive(_1);
        _1 = call arc::new(const 9) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call arc::clone(_1) -> bb2;
    }

    bb2: {
        drop(_1) -> bb3;
    }

    bb3: {
        _0 = (*_2);
        drop(_2) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// An Arc moved into a worker thread; the worker reads the shared value
/// and main joins for it — the ownership-transfer sharing shape.
pub const ARC_ACROSS_THREADS: CorpusEntry = CorpusEntry {
    name: "arc_across_threads",
    description: "Arc cloned into a spawned thread; both sides read the shared value",
    static_bugs: &[],
    dynamic: DynamicExpectation::ReturnsInt(14),
    source: r#"
fn worker(_1 as a: Arc<int>) -> int {
    bb0: {
        _0 = (*_1);
        drop(_1) -> bb1;
    }

    bb1: {
        return;
    }
}

fn main() -> int {
    let _1 as a1: Arc<int>;
    let _2 as a2: Arc<int>;
    let _3 as h: JoinHandle<int>;
    let _4 as from_worker: int;

    bb0: {
        StorageLive(_1);
        _1 = call arc::new(const 7) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call arc::clone(_1) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3 = call thread::spawn(const fn worker, move _2) -> bb3;
    }

    bb3: {
        StorageLive(_4);
        _4 = call thread::join(_3) -> bb4;
    }

    bb4: {
        _0 = _4 + (*_1);
        drop(_1) -> bb5;
    }

    bb5: {
        return;
    }
}
"#,
};

/// All memory-pattern corpus entries.
pub const ENTRIES: &[&CorpusEntry] = &[
    &UAF_STORAGE_DEAD,
    &UAF_FIG7_DROP,
    &UAF_HEAP,
    &UAF_FIXED,
    &DOUBLE_FREE_DEALLOC,
    &DOUBLE_FREE_PTR_READ,
    &DOUBLE_FREE_FIXED,
    &INVALID_FREE_FIG6,
    &INVALID_FREE_FIXED,
    &UNINIT_READ_HEAP,
    &UNINIT_READ_BRANCH,
    &UNINIT_FIXED,
    &NULL_DEREF_MATCH,
    &NULL_FIXED,
    &BUFFER_OVERFLOW_COMPUTED,
    &BUFFER_OVERFLOW_OFFSET,
    &BUFFER_FIXED,
    &UNINIT_MEMCPY_SHORT,
    &MEMCPY_FULL,
    &DOUBLE_FREE_ARC,
    &ARC_CLONE_CLEAN,
    &ARC_ACROSS_THREADS,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_parse() {
        for e in ENTRIES {
            let _ = e.program();
        }
    }

    #[test]
    fn buggy_and_fixed_pairs_exist() {
        let buggy = ENTRIES.iter().filter(|e| !e.is_statically_clean()).count();
        let clean = ENTRIES.iter().filter(|e| e.is_statically_clean()).count();
        assert!(buggy >= 10, "{buggy}");
        assert!(clean >= 5, "{clean}");
    }
}
