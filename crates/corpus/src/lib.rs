//! A labelled corpus of MIR programs reproducing every bug pattern the
//! study describes, plus safe variants for false-positive measurement.
//!
//! Each [`CorpusEntry`] carries ground truth on two axes:
//!
//! * `static_bugs` — the bug-class codes (matching
//!   `rstudy_core::BugClass::code()`) a sound-and-precise static pass
//!   should report, and
//! * `dynamic` — what actually happens when the program runs under the
//!   `rstudy-interp` checked interpreter.
//!
//! The two axes intentionally diverge on some entries (a static detector
//! sees the `ptr::read` double free that a value-level dynamic model
//! misses; a dynamic scheduler trips the ABBA deadlock that intraprocedural
//! static analysis cannot order) — that divergence *is* the paper's
//! static-vs-dynamic comparison, made testable.

#![warn(missing_docs)]
pub mod blocking;
pub mod detector_eval;
pub mod memory;
pub mod mutate;
pub mod nonblocking;

use rstudy_mir::parse::parse_program;
use rstudy_mir::validate::validate_program;
use rstudy_mir::Program;

/// What running an entry under the checked interpreter must produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicExpectation {
    /// Completes without fault or race.
    Clean,
    /// Stops on a memory fault (any of the study's memory classes).
    MemoryFault,
    /// Deadlocks (including self-deadlock and recursive once).
    Deadlock,
    /// Completes but reports a data race.
    Race,
    /// Completes cleanly with this return value — used for bugs that
    /// manifest as wrong results (e.g. the Fig. 9 atomicity violation).
    ReturnsInt(i64),
}

/// One corpus program with ground truth.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Unique name.
    pub name: &'static str,
    /// What the program models (with the paper section it comes from).
    pub description: &'static str,
    /// Textual MIR source.
    pub source: &'static str,
    /// Bug-class codes static analysis should report (exact set).
    pub static_bugs: &'static [&'static str],
    /// Expected dynamic behaviour.
    pub dynamic: DynamicExpectation,
}

impl CorpusEntry {
    /// Parses (and validates) the program.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source is malformed — corpus entries are
    /// compile-time constants, so that is a bug in this crate.
    pub fn program(&self) -> Program {
        let program = parse_program(self.source)
            .unwrap_or_else(|e| panic!("corpus entry `{}` fails to parse: {e}", self.name));
        if let Err(errs) = validate_program(&program) {
            panic!("corpus entry `{}` is invalid: {errs:?}", self.name);
        }
        program
    }

    /// Returns `true` if ground truth marks this entry bug-free for
    /// static analysis.
    pub fn is_statically_clean(&self) -> bool {
        self.static_bugs.is_empty()
    }
}

/// Every corpus entry, across all categories.
pub fn all_entries() -> Vec<&'static CorpusEntry> {
    let mut out: Vec<&'static CorpusEntry> = Vec::new();
    out.extend(memory::ENTRIES);
    out.extend(blocking::ENTRIES);
    out.extend(nonblocking::ENTRIES);
    out.extend(detector_eval::ENTRIES);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_parses_and_validates() {
        for e in all_entries() {
            let p = e.program();
            assert!(!p.is_empty(), "{} has no functions", e.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_entries().iter().map(|e| e.name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn corpus_covers_buggy_and_clean_programs() {
        let entries = all_entries();
        assert!(entries.iter().any(|e| e.is_statically_clean()));
        assert!(entries.iter().any(|e| !e.is_statically_clean()));
        assert!(entries.len() >= 30, "corpus too small: {}", entries.len());
    }

    #[test]
    fn every_memory_class_is_represented() {
        let entries = all_entries();
        for code in [
            "use-after-free",
            "double-free",
            "invalid-free",
            "uninit-read",
            "null-deref",
            "buffer-overflow",
            "double-lock",
            "lock-order-inversion",
            "recursive-once",
            "missed-wakeup",
            "channel-never-sent",
            "interior-mutation",
        ] {
            assert!(
                entries.iter().any(|e| e.static_bugs.contains(&code)),
                "no corpus entry for {code}"
            );
        }
    }
}
