//! Non-blocking bug patterns (§6.2, Table 4), plus fixed variants.

use crate::{CorpusEntry, DynamicExpectation};

/// The most common Table 4 sharing mechanism: a raw pointer handed to two
/// threads, which update the pointee without synchronization.
pub const RACE_RAW_POINTER: CorpusEntry = CorpusEntry {
    name: "race_raw_pointer",
    description: "two threads bump a counter through a shared raw pointer (Table 4 'Pointer')",
    static_bugs: &[],
    dynamic: DynamicExpectation::Race,
    source: r#"
fn bump(_1 as p: *mut int) -> unit {
    bb0: {
        unsafe (*_1) = (*_1) + const 1;
        return;
    }
}

fn main() -> int {
    let _1 as x: int;
    let _2 as p: *mut int;
    let _3 as h1: JoinHandle<unit>;
    let _4 as h2: JoinHandle<unit>;
    let _5: unit;

    bb0: {
        StorageLive(_1);
        _1 = const 0;
        StorageLive(_2);
        _2 = &raw mut _1;
        StorageLive(_3);
        _3 = call thread::spawn(const fn bump, _2) -> bb1;
    }

    bb1: {
        StorageLive(_4);
        _4 = call thread::spawn(const fn bump, _2) -> bb2;
    }

    bb2: {
        StorageLive(_5);
        _5 = call thread::join(_3) -> bb3;
    }

    bb3: {
        _5 = call thread::join(_4) -> bb4;
    }

    bb4: {
        _0 = _1;
        return;
    }
}
"#,
};

/// The fixed variant: the counter lives in a mutex; both threads lock.
pub const RACE_FIXED_MUTEX: CorpusEntry = CorpusEntry {
    name: "race_fixed_mutex",
    description: "fixed: counter wrapped in a Mutex, updates under the lock",
    static_bugs: &[],
    dynamic: DynamicExpectation::ReturnsInt(2),
    source: r#"
fn bump(_1 as m: Mutex<int>) -> unit {
    let _2 as g: Guard<int>;

    bb0: {
        StorageLive(_2);
        _2 = call mutex::lock(_1) -> bb1;
    }

    bb1: {
        (*_2) = (*_2) + const 1;
        StorageDead(_2);
        return;
    }
}

fn main() -> int {
    let _1 as m: Mutex<int>;
    let _2 as h1: JoinHandle<unit>;
    let _3 as h2: JoinHandle<unit>;
    let _4: unit;
    let _5 as r: &Mutex<int>;
    let _6 as g: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call thread::spawn(const fn bump, _1) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3 = call thread::spawn(const fn bump, _1) -> bb3;
    }

    bb3: {
        StorageLive(_4);
        _4 = call thread::join(_2) -> bb4;
    }

    bb4: {
        _4 = call thread::join(_3) -> bb5;
    }

    bb5: {
        StorageLive(_5);
        _5 = &_1;
        StorageLive(_6);
        _6 = call mutex::lock(_5) -> bb6;
    }

    bb6: {
        _0 = (*_6);
        StorageDead(_6);
        return;
    }
}
"#,
};

/// The paper's Fig. 9 (`AuthorityRound::generate_seal`): load an atomic
/// flag, branch, then store — two threads can both obtain a seal. The bug
/// manifests as the wrong result 2 (both threads sealed) instead of 1.
pub const ATOMIC_CHECK_THEN_ACT: CorpusEntry = CorpusEntry {
    name: "atomic_check_then_act",
    description: "Fig. 9: atomic load/branch/store window lets both threads seal",
    static_bugs: &["interior-mutation"],
    dynamic: DynamicExpectation::ReturnsInt(2),
    source: r#"
fn generate_seal(_1 as proposed: AtomicInt) -> int {
    let _2 as seen: int;
    let _3: unit;

    bb0: {
        StorageLive(_2);
        _2 = call atomic::load(_1) -> bb1;
    }

    bb1: {
        switchInt(_2) -> [1: bb2, otherwise: bb3];
    }

    bb2: {
        _0 = const 0;
        return;
    }

    bb3: {
        StorageLive(_3);
        _3 = call atomic::store(_1, const 1) -> bb4;
    }

    bb4: {
        _0 = const 1;
        return;
    }
}

fn main() -> int {
    let _1 as proposed: AtomicInt;
    let _2 as h1: JoinHandle<int>;
    let _3 as h2: JoinHandle<int>;
    let _4 as s1: int;
    let _5 as s2: int;

    bb0: {
        StorageLive(_1);
        _1 = call atomic::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call thread::spawn(const fn generate_seal, _1) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3 = call thread::spawn(const fn generate_seal, _1) -> bb3;
    }

    bb3: {
        StorageLive(_4);
        _4 = call thread::join(_2) -> bb4;
    }

    bb4: {
        StorageLive(_5);
        _5 = call thread::join(_3) -> bb5;
    }

    bb5: {
        _0 = _4 + _5;
        return;
    }
}
"#,
};

/// The Fig. 9 patch: one `compare_and_swap`; exactly one thread seals.
pub const ATOMIC_CAS_FIXED: CorpusEntry = CorpusEntry {
    name: "atomic_cas_fixed",
    description: "Fig. 9 patch: compare_and_swap closes the window; one seal total",
    static_bugs: &[],
    dynamic: DynamicExpectation::ReturnsInt(1),
    source: r#"
fn generate_seal(_1 as proposed: AtomicInt) -> int {
    let _2 as prev: int;

    bb0: {
        StorageLive(_2);
        _2 = call atomic::compare_and_swap(_1, const 0, const 1) -> bb1;
    }

    bb1: {
        switchInt(_2) -> [0: bb2, otherwise: bb3];
    }

    bb2: {
        _0 = const 1;
        return;
    }

    bb3: {
        _0 = const 0;
        return;
    }
}

fn main() -> int {
    let _1 as proposed: AtomicInt;
    let _2 as h1: JoinHandle<int>;
    let _3 as h2: JoinHandle<int>;
    let _4 as s1: int;
    let _5 as s2: int;

    bb0: {
        StorageLive(_1);
        _1 = call atomic::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call thread::spawn(const fn generate_seal, _1) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3 = call thread::spawn(const fn generate_seal, _1) -> bb3;
    }

    bb3: {
        StorageLive(_4);
        _4 = call thread::join(_2) -> bb4;
    }

    bb4: {
        StorageLive(_5);
        _5 = call thread::join(_3) -> bb5;
    }

    bb5: {
        _0 = _4 + _5;
        return;
    }
}
"#,
};

/// The paper's Fig. 4 `TestCell::set`: a `&self` method writes through a
/// raw-pointer cast of the shared reference, no synchronization.
pub const INTERIOR_MUT_SHARED_SELF: CorpusEntry = CorpusEntry {
    name: "interior_mut_shared_self",
    description: "Fig. 4: &self method mutates through a pointer cast (Suggestion 8)",
    static_bugs: &["interior-mutation"],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn set(_1 as self: &TestCell, _2 as i: int) -> unit {
    let _3 as p: *mut int;

    bb0: {
        StorageLive(_3);
        _3 = _1 as *mut int;
        unsafe (*_3) = _2;
        return;
    }
}

fn main() -> unit {
    let _1 as cell: TestCell;
    let _2 as r: &TestCell;

    bb0: {
        StorageLive(_1);
        _1 = const 0;
        StorageLive(_2);
        _2 = &_1;
        _0 = call set(_2, const 7) -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// The compiler-sanctioned variant: `&mut self` receiver.
pub const INTERIOR_MUT_FIXED: CorpusEntry = CorpusEntry {
    name: "interior_mut_fixed",
    description: "fixed Fig. 4: &mut self lets the compiler enforce exclusivity",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn set(_1 as self: &mut TestCell, _2 as i: int) -> unit {
    bb0: {
        (*_1) = _2;
        return;
    }
}

fn main() -> unit {
    let _1 as cell: TestCell;
    let _2 as r: &mut TestCell;

    bb0: {
        StorageLive(_1);
        _1 = const 0;
        StorageLive(_2);
        _2 = &mut _1;
        _0 = call set(_2, const 7) -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// All non-blocking corpus entries.
pub const ENTRIES: &[&CorpusEntry] = &[
    &RACE_RAW_POINTER,
    &RACE_FIXED_MUTEX,
    &ATOMIC_CHECK_THEN_ACT,
    &ATOMIC_CAS_FIXED,
    &INTERIOR_MUT_SHARED_SELF,
    &INTERIOR_MUT_FIXED,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_parse() {
        for e in ENTRIES {
            let _ = e.program();
        }
    }

    #[test]
    fn fig9_pair_expects_different_seal_counts() {
        assert_eq!(
            ATOMIC_CHECK_THEN_ACT.dynamic,
            DynamicExpectation::ReturnsInt(2)
        );
        assert_eq!(ATOMIC_CAS_FIXED.dynamic, DynamicExpectation::ReturnsInt(1));
    }
}
