//! Failure injection: mutators that turn a safe program into a specific
//! bug class, for testing that the *right* detector fires.
//!
//! Each mutator takes a program and rewrites it into a buggy variant; the
//! `failure_injection` integration suite asserts the corresponding
//! detector (and only a sensible set of detectors) reports it.

use rstudy_mir::{
    BasicBlock, Body, Local, Operand, Place, Program, Statement, StatementKind, Terminator,
    TerminatorKind,
};

/// Where a mutation was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationSite {
    /// Function mutated.
    pub function: String,
    /// Block mutated.
    pub block: BasicBlock,
    /// Human-readable description of the rewrite.
    pub description: String,
}

/// Moves the first `StorageDead(l)` of a pointed-to local up to directly
/// after the pointer to it is created — manufacturing a use-after-free if
/// the pointer is dereferenced later. Returns the site, or `None` if the
/// program has no suitable shape.
pub fn hoist_storage_dead(program: &mut Program) -> Option<MutationSite> {
    let names: Vec<String> = program.iter().map(|(n, _)| n.to_owned()).collect();
    for name in names {
        let body = program.function(&name)?.clone();
        if let Some((bb, creation_idx, dead_local)) = find_hoist_candidate(&body) {
            let mut new_body = body;
            // Remove the original StorageDead wherever it is.
            for data in &mut new_body.blocks {
                data.statements.retain(
                    |s| !matches!(s.kind, StatementKind::StorageDead(l) if l == dead_local),
                );
            }
            let block = &mut new_body.blocks[bb.index()];
            block.statements.insert(
                creation_idx + 1,
                Statement::new(StatementKind::StorageDead(dead_local)),
            );
            program.insert(new_body);
            return Some(MutationSite {
                function: name,
                block: bb,
                description: format!("StorageDead({dead_local}) hoisted above later uses"),
            });
        }
    }
    None
}

/// Finds `(block, statement index, pointee)` where a raw address of a
/// local is taken and that local is storage-killed later.
fn find_hoist_candidate(body: &Body) -> Option<(BasicBlock, usize, Local)> {
    let killed: Vec<Local> = body
        .blocks
        .iter()
        .flat_map(|b| &b.statements)
        .filter_map(|s| match s.kind {
            StatementKind::StorageDead(l) => Some(l),
            _ => None,
        })
        .collect();
    for bb in body.block_indices() {
        for (i, stmt) in body.block(bb).statements.iter().enumerate() {
            if let StatementKind::Assign(_, rv) = &stmt.kind {
                if let Some(place) = rv.pointer_base() {
                    if place.is_local() && killed.contains(&place.local) {
                        return Some((bb, i, place.local));
                    }
                }
            }
        }
    }
    None
}

/// Duplicates the first `dealloc` call: the continuation re-runs the same
/// dealloc before proceeding — a double free.
pub fn duplicate_dealloc(program: &mut Program) -> Option<MutationSite> {
    let names: Vec<String> = program.iter().map(|(n, _)| n.to_owned()).collect();
    for name in names {
        let body = program.function(&name)?.clone();
        for bb in body.block_indices() {
            let data = body.block(bb);
            let Some(term) = &data.terminator else {
                continue;
            };
            let TerminatorKind::Call {
                func: rstudy_mir::Callee::Intrinsic(rstudy_mir::Intrinsic::Dealloc),
                args,
                destination,
                target: Some(target),
            } = &term.kind
            else {
                continue;
            };
            // Insert a new block performing the second dealloc between the
            // first dealloc and its continuation.
            let mut new_body = body.clone();
            let second = BasicBlock(new_body.blocks.len() as u32);
            let mut second_data = rstudy_mir::BasicBlockData::new();
            second_data.terminator = Some(Terminator::new(TerminatorKind::Call {
                func: rstudy_mir::Callee::Intrinsic(rstudy_mir::Intrinsic::Dealloc),
                args: args.clone(),
                destination: destination.clone(),
                target: Some(*target),
            }));
            new_body.blocks.push(second_data);
            if let Some(t) = new_body.blocks[bb.index()].terminator.as_mut() {
                if let TerminatorKind::Call { target, .. } = &mut t.kind {
                    *target = Some(second);
                }
            }
            program.insert(new_body);
            return Some(MutationSite {
                function: name,
                block: bb,
                description: "dealloc duplicated along the same path".to_owned(),
            });
        }
    }
    None
}

/// Removes the statement or call that releases the first lock guard
/// before a later acquisition — manufacturing a double lock. Concretely:
/// deletes the first `StorageDead` of a call-destination guard local when
/// another lock acquisition appears later.
pub fn drop_guard_release(program: &mut Program) -> Option<MutationSite> {
    let names: Vec<String> = program.iter().map(|(n, _)| n.to_owned()).collect();
    for name in names {
        let body = program.function(&name)?.clone();
        let guards: Vec<Local> = guard_locals(&body);
        if guards.is_empty() {
            continue;
        }
        let mut new_body = body.clone();
        let mut removed = false;
        for data in &mut new_body.blocks {
            if removed {
                break;
            }
            let before = data.statements.len();
            let mut kept = Vec::with_capacity(before);
            for s in data.statements.drain(..) {
                let is_release = !removed
                    && matches!(s.kind, StatementKind::StorageDead(l) if guards.contains(&l));
                if is_release {
                    removed = true;
                } else {
                    kept.push(s);
                }
            }
            data.statements = kept;
        }
        if removed {
            program.insert(new_body);
            return Some(MutationSite {
                function: name,
                block: BasicBlock::ENTRY,
                description: "guard release (StorageDead) removed".to_owned(),
            });
        }
    }
    None
}

/// Guard locals: destinations of lock-acquiring intrinsic calls.
fn guard_locals(body: &Body) -> Vec<Local> {
    let mut out = Vec::new();
    for bb in body.block_indices() {
        if let Some(term) = &body.block(bb).terminator {
            if let TerminatorKind::Call {
                func: rstudy_mir::Callee::Intrinsic(i),
                destination,
                ..
            } = &term.kind
            {
                if i.acquires_lock() && destination.is_local() {
                    out.push(destination.local);
                }
            }
        }
    }
    out
}

/// Replaces the first initializing `ptr::write` with a plain assignment
/// through the pointer — manufacturing the Fig. 6 invalid free when the
/// pointee type has drop glue.
pub fn unwrite_initialization(program: &mut Program) -> Option<MutationSite> {
    let names: Vec<String> = program.iter().map(|(n, _)| n.to_owned()).collect();
    for name in names {
        let body = program.function(&name)?.clone();
        for bb in body.block_indices() {
            let data = body.block(bb);
            let Some(term) = &data.terminator else {
                continue;
            };
            let TerminatorKind::Call {
                func: rstudy_mir::Callee::Intrinsic(rstudy_mir::Intrinsic::PtrWrite),
                args,
                target: Some(target),
                ..
            } = &term.kind
            else {
                continue;
            };
            let Some(ptr) = args
                .first()
                .and_then(Operand::place)
                .filter(|p| p.is_local())
            else {
                continue;
            };
            let value = args.get(1).cloned().unwrap_or(Operand::int(0));
            let mut new_body = body.clone();
            // Replace the call with: `*p = v; goto target`.
            let block = &mut new_body.blocks[bb.index()];
            block
                .statements
                .push(Statement::new_unsafe(StatementKind::Assign(
                    Place::from_local(ptr.local).deref(),
                    rstudy_mir::Rvalue::Use(value),
                )));
            block.terminator = Some(Terminator::new(TerminatorKind::Goto { target: *target }));
            program.insert(new_body);
            return Some(MutationSite {
                function: name,
                block: bb,
                description: "ptr::write replaced by a dropping assignment".to_owned(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::DOUBLE_LOCK_FIG8_FIXED;
    use crate::memory::{INVALID_FREE_FIXED, UAF_FIXED, UNINIT_FIXED};
    use rstudy_mir::validate::validate_program;

    #[test]
    fn hoist_storage_dead_produces_valid_program() {
        let mut p = UAF_FIXED.program();
        // UAF_FIXED uses Drop, not StorageDead; use UNINIT_FIXED-like shape.
        let site = hoist_storage_dead(&mut p);
        // Whether or not a candidate exists, the program must stay valid.
        assert!(validate_program(&p).is_ok(), "{site:?}");
    }

    #[test]
    fn duplicate_dealloc_mutates_fixed_heap_program() {
        let mut p = UNINIT_FIXED.program();
        // UNINIT_FIXED has alloc + ptr::write, no dealloc: mutation is None.
        assert!(duplicate_dealloc(&mut p).is_none());
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn drop_guard_release_mutates_lock_program() {
        let mut p = DOUBLE_LOCK_FIG8_FIXED.program();
        let site = drop_guard_release(&mut p).expect("guard release exists");
        assert!(site.description.contains("StorageDead"));
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn unwrite_initialization_mutates_ptr_write() {
        let mut p = INVALID_FREE_FIXED.program();
        let site = unwrite_initialization(&mut p).expect("ptr::write exists");
        assert!(site.description.contains("dropping assignment"));
        assert!(validate_program(&p).is_ok());
    }
}
