//! The detector-evaluation corpus (§7): seeded targets matching the
//! paper's reported results.
//!
//! §7.1: the use-after-free detector found **4 previously unknown bugs**
//! and reported **3 false positives**, "all caused by our current
//! (unoptimized) way of performing inter-procedural analysis".
//! §7.2: the double-lock detector found **6 previously unknown bugs** with
//! **no false positives**.
//!
//! This module seeds exactly those populations: four distinct UAF bugs,
//! three programs that only a naive interprocedural analysis flags (the
//! dangling pointer flows into a callee that never dereferences it), and
//! six distinct double-lock bugs — plus clean controls.

use crate::{CorpusEntry, DynamicExpectation};

// --- the four §7.1 use-after-free targets --------------------------------

/// Target 1: dead temporary captured by a pointer inside a conditional.
pub const UAF_TARGET_COND: CorpusEntry = CorpusEntry {
    name: "uaf_target_cond",
    description: "§7.1 target 1: pointer into a scope-local escapes the scope",
    static_bugs: &["use-after-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as p: *mut int;
    let _2 as tmp: int;
    let _3 as c: bool;

    bb0: {
        StorageLive(_1);
        StorageLive(_3);
        _3 = const true;
        StorageLive(_2);
        _2 = const 10;
        _1 = &raw mut _2;
        switchInt(_3) -> [1: bb1, otherwise: bb2];
    }

    bb1: {
        StorageDead(_2);
        goto -> bb2;
    }

    bb2: {
        unsafe _0 = (*_1);
        return;
    }
}
"#,
};

/// Target 2: the pointee is moved into another owner, then read through
/// the old pointer.
pub const UAF_TARGET_MOVE: CorpusEntry = CorpusEntry {
    name: "uaf_target_move",
    description: "§7.1 target 2: value moved away while a pointer still refers to it",
    static_bugs: &["use-after-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as s: S;
    let _2 as p: *const S;
    let _3 as new_home: S;

    bb0: {
        StorageLive(_1);
        _1 = const 5;
        StorageLive(_2);
        _2 = &raw const _1;
        StorageLive(_3);
        _3 = move _1;
        unsafe _0 = (*_2);
        return;
    }
}
"#,
};

/// Target 3: a vector-style buffer freed by a self-implemented shrink, then
/// read (the §5.1 "self-implemented vector" shape).
pub const UAF_TARGET_SHRINK: CorpusEntry = CorpusEntry {
    name: "uaf_target_shrink",
    description: "§7.1 target 3: self-managed buffer freed early, element read later",
    static_bugs: &["use-after-free"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn main() -> int {
    let _1 as buf: *mut int;
    let _2 as len: int;
    let _3: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        StorageLive(_3);
        unsafe _1 = call alloc(const 4) -> bb1;
    }

    bb1: {
        unsafe _3 = call ptr::write(_1, const 1) -> bb2;
    }

    bb2: {
        _2 = const 0;
        switchInt(_2) -> [1: bb4, otherwise: bb3];
    }

    bb3: {
        unsafe _3 = call dealloc(_1) -> bb4;
    }

    bb4: {
        unsafe _0 = (*_1);
        return;
    }
}
"#,
};

/// Target 4: a function returns a pointer to its own local (every caller
/// inherits a dangling pointer).
pub const UAF_TARGET_RETURN: CorpusEntry = CorpusEntry {
    name: "uaf_target_return",
    description: "§7.1 target 4: function returns the address of its own local",
    static_bugs: &["use-after-free", "dangling-return"],
    dynamic: DynamicExpectation::MemoryFault,
    source: r#"
fn make_ptr() -> *mut int {
    let _1 as local: int;

    bb0: {
        StorageLive(_1);
        _1 = const 3;
        _0 = &raw mut _1;
        StorageDead(_1);
        return;
    }
}

fn main() -> int {
    let _1 as p: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = call make_ptr() -> bb1;
    }

    bb1: {
        unsafe _0 = (*_1);
        return;
    }
}
"#,
};

// --- the three §7.1 naive-interprocedural false positives ----------------

/// FP 1: the dangling pointer is passed to a logger that only stores it.
pub const UAF_FP_LOGGER: CorpusEntry = CorpusEntry {
    name: "uaf_fp_logger",
    description: "§7.1 FP 1: dead pointer passed to a callee that never dereferences",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn log_ptr(_1 as p: *mut int) -> int {
    bb0: {
        _0 = const 0;
        return;
    }
}

fn main() -> int {
    let _1 as x: int;
    let _2 as p: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = const 1;
        StorageLive(_2);
        _2 = &raw mut _1;
        StorageDead(_1);
        _0 = call log_ptr(_2) -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// FP 2: the callee only compares the pointer against null.
pub const UAF_FP_NULLCHECK: CorpusEntry = CorpusEntry {
    name: "uaf_fp_nullcheck",
    description: "§7.1 FP 2: callee only tests the pointer, never loads through it",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn is_null(_1 as p: *mut int) -> bool {
    let _2 as z: *mut int;

    bb0: {
        StorageLive(_2);
        _2 = const 0 as *mut int;
        _0 = _1 == _2;
        return;
    }
}

fn main() -> bool {
    let _1 as x: int;
    let _2 as p: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = const 1;
        StorageLive(_2);
        _2 = &raw mut _1;
        StorageDead(_1);
        _0 = call is_null(_2) -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

/// FP 3: the pointer is forwarded to a second non-dereferencing callee.
pub const UAF_FP_FORWARD: CorpusEntry = CorpusEntry {
    name: "uaf_fp_forward",
    description: "§7.1 FP 3: dead pointer forwarded through a wrapper, still never loaded",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn sink(_1 as p: *mut int) -> int {
    bb0: {
        _0 = const 7;
        return;
    }
}

fn wrapper(_1 as p: *mut int) -> int {
    bb0: {
        _0 = call sink(_1) -> bb1;
    }

    bb1: {
        return;
    }
}

fn main() -> int {
    let _1 as x: int;
    let _2 as p: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = const 1;
        StorageLive(_2);
        _2 = &raw mut _1;
        StorageDead(_1);
        _0 = call wrapper(_2) -> bb1;
    }

    bb1: {
        return;
    }
}
"#,
};

// --- the six §7.2 double-lock targets ------------------------------------

/// DL 1: second lock in the same block.
pub const DL_TARGET_SEQ: CorpusEntry = CorpusEntry {
    name: "dl_target_seq",
    description: "§7.2 target 1: straight-line relock",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g1: Guard<int>;
    let _4 as g2: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 1) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageLive(_4);
        _4 = call mutex::lock(_2) -> bb3;
    }

    bb3: {
        return;
    }
}
"#,
};

/// DL 2: first lock in an `if` condition, second in the branch (one of
/// the five §6.1 if-shaped double locks).
pub const DL_TARGET_IF: CorpusEntry = CorpusEntry {
    name: "dl_target_if",
    description: "§7.2 target 2: lock in if-condition, relock in the then-block",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g1: Guard<int>;
    let _4 as v: int;
    let _5 as g2: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 1) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageLive(_4);
        _4 = (*_3);
        switchInt(_4) -> [1: bb3, otherwise: bb4];
    }

    bb3: {
        StorageLive(_5);
        _5 = call mutex::lock(_2) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// DL 3: the Fig. 8 match shape on an `RwLock` (read then write).
pub const DL_TARGET_MATCH: CorpusEntry = CorpusEntry {
    name: "dl_target_match",
    description: "§7.2 target 3: read guard spans the match, write in the arm",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as l: RwLock<int>;
    let _2 as r: &RwLock<int>;
    let _3 as g1: Guard<int>;
    let _4 as v: int;
    let _5 as g2: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call rwlock::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call rwlock::read(_2) -> bb2;
    }

    bb2: {
        StorageLive(_4);
        _4 = (*_3);
        switchInt(_4) -> [1: bb4, otherwise: bb3];
    }

    bb3: {
        StorageLive(_5);
        _5 = call rwlock::write(_2) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// DL 4: cross-function relock through a helper.
pub const DL_TARGET_HELPER: CorpusEntry = CorpusEntry {
    name: "dl_target_helper",
    description: "§7.2 target 4: helper relocks the caller's mutex",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn tick(_1 as r: &Mutex<int>) -> unit {
    let _2 as g: Guard<int>;

    bb0: {
        StorageLive(_2);
        _2 = call mutex::lock(_1) -> bb1;
    }

    bb1: {
        (*_2) = (*_2) + const 1;
        StorageDead(_2);
        return;
    }
}

fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        _0 = call tick(_2) -> bb3;
    }

    bb3: {
        StorageDead(_3);
        return;
    }
}
"#,
};

/// DL 5: two-level cross-function relock (caller → wrapper → locker).
pub const DL_TARGET_NESTED: CorpusEntry = CorpusEntry {
    name: "dl_target_nested",
    description: "§7.2 target 5: relock two calls deep",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn locker(_1 as r: &Mutex<int>) -> unit {
    let _2 as g: Guard<int>;

    bb0: {
        StorageLive(_2);
        _2 = call mutex::lock(_1) -> bb1;
    }

    bb1: {
        StorageDead(_2);
        return;
    }
}

fn wrapper(_1 as r: &Mutex<int>) -> unit {
    bb0: {
        _0 = call locker(_1) -> bb1;
    }

    bb1: {
        return;
    }
}

fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        _0 = call wrapper(_2) -> bb3;
    }

    bb3: {
        StorageDead(_3);
        return;
    }
}
"#,
};

/// DL 6: relock inside a loop body while the guard from the previous
/// acquisition is still alive.
pub const DL_TARGET_LOOP: CorpusEntry = CorpusEntry {
    name: "dl_target_loop",
    description: "§7.2 target 6: loop reacquires before releasing",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g: Guard<int>;
    let _4 as i: int;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_4);
        _4 = const 0;
        StorageLive(_3);
        goto -> bb2;
    }

    bb2: {
        _3 = call mutex::lock(_2) -> bb3;
    }

    bb3: {
        _4 = _4 + const 1;
        switchInt(_4) -> [3: bb4, otherwise: bb2];
    }

    bb4: {
        StorageDead(_3);
        return;
    }
}
"#,
};

/// A clean control: lock, use, release, relock — no overlap.
pub const DL_CLEAN_SEQUENTIAL: CorpusEntry = CorpusEntry {
    name: "dl_clean_sequential",
    description: "control: guard released between the two acquisitions",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g1: Guard<int>;
    let _4 as g2: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 1) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageDead(_3);
        StorageLive(_4);
        _4 = call mutex::lock(_2) -> bb3;
    }

    bb3: {
        StorageDead(_4);
        return;
    }
}
"#,
};

/// A clean control with two different locks held in a nest.
pub const DL_CLEAN_TWO_LOCKS: CorpusEntry = CorpusEntry {
    name: "dl_clean_two_locks",
    description: "control: nested acquisition of two distinct mutexes",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> unit {
    let _1 as a: Mutex<int>;
    let _2 as b: Mutex<int>;
    let _3 as ra: &Mutex<int>;
    let _4 as rb: &Mutex<int>;
    let _5 as g1: Guard<int>;
    let _6 as g2: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call mutex::new(const 0) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3 = &_1;
        StorageLive(_4);
        _4 = &_2;
        StorageLive(_5);
        _5 = call mutex::lock(_3) -> bb3;
    }

    bb3: {
        StorageLive(_6);
        _6 = call mutex::lock(_4) -> bb4;
    }

    bb4: {
        StorageDead(_6);
        StorageDead(_5);
        return;
    }
}
"#,
};

/// The §7.1 detector-evaluation population.
pub const UAF_TARGETS: &[&CorpusEntry] = &[
    &UAF_TARGET_COND,
    &UAF_TARGET_MOVE,
    &UAF_TARGET_SHRINK,
    &UAF_TARGET_RETURN,
];

/// The programs only a naive interprocedural pass flags.
pub const UAF_FALSE_POSITIVES: &[&CorpusEntry] =
    &[&UAF_FP_LOGGER, &UAF_FP_NULLCHECK, &UAF_FP_FORWARD];

/// The §7.2 detector-evaluation population.
pub const DL_TARGETS: &[&CorpusEntry] = &[
    &DL_TARGET_SEQ,
    &DL_TARGET_IF,
    &DL_TARGET_MATCH,
    &DL_TARGET_HELPER,
    &DL_TARGET_NESTED,
    &DL_TARGET_LOOP,
];

/// Clean lock programs for the §7.2 false-positive measurement.
pub const DL_CLEAN: &[&CorpusEntry] = &[&DL_CLEAN_SEQUENTIAL, &DL_CLEAN_TWO_LOCKS];

/// All detector-evaluation entries.
pub const ENTRIES: &[&CorpusEntry] = &[
    &UAF_TARGET_COND,
    &UAF_TARGET_MOVE,
    &UAF_TARGET_SHRINK,
    &UAF_TARGET_RETURN,
    &UAF_FP_LOGGER,
    &UAF_FP_NULLCHECK,
    &UAF_FP_FORWARD,
    &DL_TARGET_SEQ,
    &DL_TARGET_IF,
    &DL_TARGET_MATCH,
    &DL_TARGET_HELPER,
    &DL_TARGET_NESTED,
    &DL_TARGET_LOOP,
    &DL_CLEAN_SEQUENTIAL,
    &DL_CLEAN_TWO_LOCKS,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_parse() {
        for e in ENTRIES {
            let _ = e.program();
        }
    }

    #[test]
    fn populations_match_the_papers_counts() {
        assert_eq!(UAF_TARGETS.len(), 4, "§7.1: four unknown UAF bugs");
        assert_eq!(UAF_FALSE_POSITIVES.len(), 3, "§7.1: three false positives");
        assert_eq!(DL_TARGETS.len(), 6, "§7.2: six unknown double locks");
    }

    #[test]
    fn false_positive_programs_are_clean_ground_truth() {
        for e in UAF_FALSE_POSITIVES {
            assert!(e.is_statically_clean(), "{}", e.name);
            assert_eq!(e.dynamic, DynamicExpectation::Clean, "{}", e.name);
        }
    }
}
