//! Blocking-bug patterns (§6.1, Table 3), plus safe variants.

use crate::{CorpusEntry, DynamicExpectation};

/// The simplest double lock: second `lock()` while the first guard's
/// lifetime has not ended.
pub const DOUBLE_LOCK_SIMPLE: CorpusEntry = CorpusEntry {
    name: "double_lock_simple",
    description: "mutex locked twice with the first guard still alive (§6.1)",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g1: Guard<int>;
    let _4 as g2: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageLive(_4);
        _4 = call mutex::lock(_2) -> bb3;
    }

    bb3: {
        StorageDead(_4);
        StorageDead(_3);
        return;
    }
}
"#,
};

/// The paper's Fig. 8 (TiKV `do_request`): the read guard returned by
/// `client.read()` lives to the end of the match, so the write lock in the
/// Ok-arm deadlocks.
pub const DOUBLE_LOCK_FIG8: CorpusEntry = CorpusEntry {
    name: "double_lock_fig8",
    description: "Fig. 8: read guard held through the match; write lock in the arm",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as client: RwLock<int>;
    let _2 as r: &RwLock<int>;
    let _3 as read_guard: Guard<int>;
    let _4 as ok: int;
    let _5 as write_guard: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call rwlock::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call rwlock::read(_2) -> bb2;
    }

    bb2: {
        StorageLive(_4);
        _4 = (*_3);
        switchInt(_4) -> [1: bb4, otherwise: bb3];
    }

    bb3: {
        StorageLive(_5);
        _5 = call rwlock::write(_2) -> bb5;
    }

    bb4: {
        StorageDead(_3);
        return;
    }

    bb5: {
        (*_5) = const 1;
        StorageDead(_5);
        StorageDead(_3);
        return;
    }
}
"#,
};

/// The Fig. 8 patch: save the result, end the read guard's lifetime, then
/// take the write lock.
pub const DOUBLE_LOCK_FIG8_FIXED: CorpusEntry = CorpusEntry {
    name: "double_lock_fig8_fixed",
    description: "Fig. 8 patch: read guard released before the write lock",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn main() -> unit {
    let _1 as client: RwLock<int>;
    let _2 as r: &RwLock<int>;
    let _3 as read_guard: Guard<int>;
    let _4 as result: int;
    let _5 as write_guard: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call rwlock::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call rwlock::read(_2) -> bb2;
    }

    bb2: {
        StorageLive(_4);
        _4 = (*_3);
        StorageDead(_3);
        switchInt(_4) -> [1: bb4, otherwise: bb3];
    }

    bb3: {
        StorageLive(_5);
        _5 = call rwlock::write(_2) -> bb5;
    }

    bb4: {
        return;
    }

    bb5: {
        (*_5) = const 1;
        StorageDead(_5);
        return;
    }
}
"#,
};

/// Cross-function double lock: the callee locks what the caller holds.
pub const DOUBLE_LOCK_INTERPROC: CorpusEntry = CorpusEntry {
    name: "double_lock_interproc",
    description: "callee re-locks a mutex the caller still holds (§7.2 interprocedural)",
    static_bugs: &["double-lock"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn helper(_1 as r: &Mutex<int>) -> unit {
    let _2 as g: Guard<int>;

    bb0: {
        StorageLive(_2);
        _2 = call mutex::lock(_1) -> bb1;
    }

    bb1: {
        StorageDead(_2);
        return;
    }
}

fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        _0 = call helper(_2) -> bb3;
    }

    bb3: {
        StorageDead(_3);
        return;
    }
}
"#,
};

/// The interprocedural fix: explicit `mem::drop` of the guard before the
/// call (the §6.1 "explicitly define the critical-section boundary" idiom).
pub const DOUBLE_LOCK_INTERPROC_FIXED: CorpusEntry = CorpusEntry {
    name: "double_lock_interproc_fixed",
    description: "guard explicitly dropped before calling the locking callee",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn helper(_1 as r: &Mutex<int>) -> unit {
    let _2 as g: Guard<int>;

    bb0: {
        StorageLive(_2);
        _2 = call mutex::lock(_1) -> bb1;
    }

    bb1: {
        StorageDead(_2);
        return;
    }
}

fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g: Guard<int>;
    let _4: unit;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageLive(_4);
        _4 = call mem::drop(move _3) -> bb3;
    }

    bb3: {
        _0 = call helper(_2) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// A `Condvar` waiter that nobody ever notifies (8 of the 10 Condvar bugs).
pub const CONDVAR_NO_NOTIFY: CorpusEntry = CorpusEntry {
    name: "condvar_no_notify",
    description: "thread waits on a condvar no other thread notifies (§6.1)",
    static_bugs: &["missed-wakeup"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as m: Mutex<int>;
    let _2 as r: &Mutex<int>;
    let _3 as g: Guard<int>;
    let _4 as cv: Condvar;
    let _5 as cvr: &Condvar;
    let _6 as g2: Guard<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_4);
        _4 = call condvar::new() -> bb2;
    }

    bb2: {
        StorageLive(_2);
        _2 = &_1;
        StorageLive(_3);
        _3 = call mutex::lock(_2) -> bb3;
    }

    bb3: {
        StorageLive(_5);
        _5 = &_4;
        StorageLive(_6);
        _6 = call condvar::wait(_5, move _3) -> bb4;
    }

    bb4: {
        StorageDead(_6);
        return;
    }
}
"#,
};

/// Receive on a channel with no sender (§6.1's channel-blocking shape).
pub const CHANNEL_NO_SENDER: CorpusEntry = CorpusEntry {
    name: "channel_no_sender",
    description: "recv blocks forever: no thread can send (§6.1 channel bug)",
    static_bugs: &["channel-never-sent"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> int {
    let _1 as ch: Channel<int>;

    bb0: {
        StorageLive(_1);
        _1 = call channel::unbounded() -> bb1;
    }

    bb1: {
        _0 = call channel::recv(_1) -> bb2;
    }

    bb2: {
        return;
    }
}
"#,
};

/// Send into a full bounded channel nobody drains (the one §6.1 bug of
/// this shape).
pub const CHANNEL_FULL: CorpusEntry = CorpusEntry {
    name: "channel_full",
    description: "send blocks on a full bounded channel with no receiver",
    static_bugs: &[],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn main() -> unit {
    let _1 as ch: Channel<int>;
    let _2: unit;

    bb0: {
        StorageLive(_1);
        StorageLive(_2);
        _1 = call channel::bounded(const 1) -> bb1;
    }

    bb1: {
        _2 = call channel::send(_1, const 1) -> bb2;
    }

    bb2: {
        _2 = call channel::send(_1, const 2) -> bb3;
    }

    bb3: {
        return;
    }
}
"#,
};

/// The channel pipeline done right: a producer thread feeds the receiver.
pub const CHANNEL_FIXED: CorpusEntry = CorpusEntry {
    name: "channel_fixed",
    description: "producer thread sends; main receives — no blocking bug",
    static_bugs: &[],
    dynamic: DynamicExpectation::ReturnsInt(99),
    source: r#"
fn producer(_1 as ch: Channel<int>) -> unit {
    let _2: unit;

    bb0: {
        StorageLive(_2);
        _2 = call channel::send(_1, const 99) -> bb1;
    }

    bb1: {
        return;
    }
}

fn main() -> int {
    let _1 as ch: Channel<int>;
    let _2 as h: JoinHandle<unit>;
    let _3: unit;

    bb0: {
        StorageLive(_1);
        _1 = call channel::unbounded() -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call thread::spawn(const fn producer, _1) -> bb2;
    }

    bb2: {
        _0 = call channel::recv(_1) -> bb3;
    }

    bb3: {
        StorageLive(_3);
        _3 = call thread::join(_2) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// `call_once` whose initializer reaches `call_once` again (§6.1's Once
/// deadlock).
pub const ONCE_RECURSIVE: CorpusEntry = CorpusEntry {
    name: "once_recursive",
    description: "initializer passed to call_once re-enters call_once (§6.1)",
    static_bugs: &["recursive-once"],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn init(_1 as o: Once) -> unit {
    bb0: {
        _0 = call once::call_once(_1, const fn init) -> bb1;
    }

    bb1: {
        return;
    }
}

fn main() -> unit {
    let _1 as o: Once;
    let _2 as r: &Once;

    bb0: {
        StorageLive(_1);
        _1 = call once::new() -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = &_1;
        _0 = call once::call_once(_2, const fn init) -> bb2;
    }

    bb2: {
        return;
    }
}
"#,
};

/// Conflicting lock orders across two functions called with swapped lock
/// arguments (7 of the §6.1 blocking bugs). Statically detectable; the
/// sequential execution completes, so the dynamic run is clean — the
/// deadlock needs two *threads*, which `lock_order_threads` models.
pub const LOCK_ORDER_INVERSION: CorpusEntry = CorpusEntry {
    name: "lock_order_inversion",
    description: "A->B in one path, B->A in another (§6.1 conflicting orders)",
    static_bugs: &["lock-order-inversion"],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn transfer(_1 as from: &Mutex<int>, _2 as to: &Mutex<int>) -> unit {
    let _3 as g1: Guard<int>;
    let _4 as g2: Guard<int>;

    bb0: {
        StorageLive(_3);
        _3 = call mutex::lock(_1) -> bb1;
    }

    bb1: {
        StorageLive(_4);
        _4 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageDead(_4);
        StorageDead(_3);
        return;
    }
}

fn main() -> unit {
    let _1 as a: Mutex<int>;
    let _2 as b: Mutex<int>;
    let _3 as ra: &Mutex<int>;
    let _4 as rb: &Mutex<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call mutex::new(const 0) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3 = &_1;
        StorageLive(_4);
        _4 = &_2;
        _0 = call transfer(_3, _4) -> bb3;
    }

    bb3: {
        _0 = call transfer(_4, _3) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// The ABBA deadlock with real threads: each worker receives a pointer to
/// a pair of lock references and acquires them in opposite orders. The
/// round-robin scheduler interleaves the acquisitions and deadlocks;
/// the static detectors cannot see through the pointer-laundered pair
/// (documented coverage gap — the dynamic side of the comparison).
pub const LOCK_ORDER_THREADS: CorpusEntry = CorpusEntry {
    name: "lock_order_threads",
    description: "two threads acquire A/B in opposite orders and deadlock",
    static_bugs: &[],
    dynamic: DynamicExpectation::Deadlock,
    source: r#"
fn worker_ab(_1 as pair: *mut (&Mutex<int>, &Mutex<int>)) -> unit {
    let _2 as ra: &Mutex<int>;
    let _3 as rb: &Mutex<int>;
    let _4 as g1: Guard<int>;
    let _5 as g2: Guard<int>;

    bb0: {
        StorageLive(_2);
        unsafe _2 = (*_1).0;
        StorageLive(_3);
        unsafe _3 = (*_1).1;
        StorageLive(_4);
        _4 = call mutex::lock(_2) -> bb1;
    }

    bb1: {
        StorageLive(_5);
        _5 = call mutex::lock(_3) -> bb2;
    }

    bb2: {
        StorageDead(_5);
        StorageDead(_4);
        return;
    }
}

fn worker_ba(_1 as pair: *mut (&Mutex<int>, &Mutex<int>)) -> unit {
    let _2 as ra: &Mutex<int>;
    let _3 as rb: &Mutex<int>;
    let _4 as g1: Guard<int>;
    let _5 as g2: Guard<int>;

    bb0: {
        StorageLive(_2);
        unsafe _2 = (*_1).0;
        StorageLive(_3);
        unsafe _3 = (*_1).1;
        StorageLive(_4);
        _4 = call mutex::lock(_3) -> bb1;
    }

    bb1: {
        StorageLive(_5);
        _5 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageDead(_5);
        StorageDead(_4);
        return;
    }
}

fn main() -> unit {
    let _1 as a: Mutex<int>;
    let _2 as b: Mutex<int>;
    let _3 as pair: (&Mutex<int>, &Mutex<int>);
    let _4 as pp: *mut (&Mutex<int>, &Mutex<int>);
    let _5 as h1: JoinHandle<unit>;
    let _6 as h2: JoinHandle<unit>;
    let _7: unit;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call mutex::new(const 0) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3.0 = &_1;
        _3.1 = &_2;
        StorageLive(_4);
        _4 = &raw mut _3;
        StorageLive(_5);
        _5 = call thread::spawn(const fn worker_ab, _4) -> bb3;
    }

    bb3: {
        StorageLive(_6);
        _6 = call thread::spawn(const fn worker_ba, _4) -> bb4;
    }

    bb4: {
        StorageLive(_7);
        _7 = call thread::join(_5) -> bb5;
    }

    bb5: {
        _7 = call thread::join(_6) -> bb6;
    }

    bb6: {
        return;
    }
}
"#,
};

/// Well-ordered locking — the fix for the inversion entries.
pub const LOCK_ORDER_FIXED: CorpusEntry = CorpusEntry {
    name: "lock_order_fixed",
    description: "both paths acquire A then B: consistent global order",
    static_bugs: &[],
    dynamic: DynamicExpectation::Clean,
    source: r#"
fn transfer(_1 as from: &Mutex<int>, _2 as to: &Mutex<int>) -> unit {
    let _3 as g1: Guard<int>;
    let _4 as g2: Guard<int>;

    bb0: {
        StorageLive(_3);
        _3 = call mutex::lock(_1) -> bb1;
    }

    bb1: {
        StorageLive(_4);
        _4 = call mutex::lock(_2) -> bb2;
    }

    bb2: {
        StorageDead(_4);
        StorageDead(_3);
        return;
    }
}

fn main() -> unit {
    let _1 as a: Mutex<int>;
    let _2 as b: Mutex<int>;
    let _3 as ra: &Mutex<int>;
    let _4 as rb: &Mutex<int>;

    bb0: {
        StorageLive(_1);
        _1 = call mutex::new(const 0) -> bb1;
    }

    bb1: {
        StorageLive(_2);
        _2 = call mutex::new(const 0) -> bb2;
    }

    bb2: {
        StorageLive(_3);
        _3 = &_1;
        StorageLive(_4);
        _4 = &_2;
        _0 = call transfer(_3, _4) -> bb3;
    }

    bb3: {
        _0 = call transfer(_3, _4) -> bb4;
    }

    bb4: {
        return;
    }
}
"#,
};

/// All blocking-pattern corpus entries.
pub const ENTRIES: &[&CorpusEntry] = &[
    &DOUBLE_LOCK_SIMPLE,
    &DOUBLE_LOCK_FIG8,
    &DOUBLE_LOCK_FIG8_FIXED,
    &DOUBLE_LOCK_INTERPROC,
    &DOUBLE_LOCK_INTERPROC_FIXED,
    &CONDVAR_NO_NOTIFY,
    &CHANNEL_NO_SENDER,
    &CHANNEL_FULL,
    &CHANNEL_FIXED,
    &ONCE_RECURSIVE,
    &LOCK_ORDER_INVERSION,
    &LOCK_ORDER_THREADS,
    &LOCK_ORDER_FIXED,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_parse() {
        for e in ENTRIES {
            let _ = e.program();
        }
    }

    #[test]
    fn deadlock_expectations_dominate() {
        let deadlocks = ENTRIES
            .iter()
            .filter(|e| e.dynamic == DynamicExpectation::Deadlock)
            .count();
        assert!(deadlocks >= 6, "{deadlocks}");
    }
}
