//! A minimal but honest Rust lexer.
//!
//! Handles the token shapes that matter for locating unsafe code reliably:
//! nested block comments, line comments, string/char/byte literals, raw
//! strings with `#` fences, lifetimes (so `'a` is not a char literal),
//! numbers with suffixes, identifiers/keywords, and all punctuation as
//! single characters.

use serde::{Deserialize, Serialize};

/// Kind of one token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// A lifetime such as `'a` (the text excludes the quote).
    Lifetime(String),
    /// Any literal (string, raw string, char, byte, number), carrying its
    /// raw source text so downstream consumers (the ingest lowering) can
    /// recover values without re-reading the file.
    Literal(String),
    /// One punctuation character.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line where it starts.
    pub line: u32,
}

impl Token {
    /// Returns the identifier text if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.ident() == Some(word)
    }

    /// Returns `true` if this is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokenKind::Punct(p) if *p == c)
    }

    /// Returns the raw source text if this is a literal token.
    pub fn literal(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Literal(s) => Some(s),
            _ => None,
        }
    }
}

/// Lexes Rust source into tokens, skipping comments and whitespace.
///
/// Literal tokens keep their raw source text; the lexer never
/// mis-brackets: every `{`/`}` that is real code is emitted, and none that
/// sit inside strings or comments are.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    // Escape handling can step past the end or into the middle of a
    // multi-byte character; clamp a raw byte offset to a safe slice end.
    let safe_end = |mut end: usize| {
        end = end.min(src.len());
        while end < src.len() && !src.is_char_boundary(end) {
            end += 1;
        }
        end
    };

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == b'\n' {
                line += 1;
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"..", r#".."#, br#".."#, with any fence depth.
        if c == b'r' || (c == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'r') {
            let start = if c == b'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' {
                let tok_line = line;
                j += 1;
                'raw: while j < bytes.len() {
                    if bytes[j] == b'"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < bytes.len() && bytes[j + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    bump_line!(bytes[j]);
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal(src[i..j].to_owned()),
                    line: tok_line,
                });
                i = j;
                continue;
            }
            // Not a raw string: fall through to identifier handling.
        }
        // Plain and byte strings.
        if c == b'"' || (c == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            let tok_line = line;
            let tok_start = i;
            i += if c == b'b' { 2 } else { 1 };
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    i += 1;
                    break;
                }
                bump_line!(bytes[i]);
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Literal(src[tok_start..safe_end(i)].to_owned()),
                line: tok_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == b'\'' {
            // Lifetime: 'ident not followed by closing quote.
            let mut j = i + 1;
            let mut name = String::new();
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                name.push(bytes[j] as char);
                j += 1;
            }
            let is_lifetime = !name.is_empty() && (j >= bytes.len() || bytes[j] != b'\'');
            if is_lifetime {
                tokens.push(Token {
                    kind: TokenKind::Lifetime(name),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: consume to the closing quote, honoring escapes.
            let tok_line = line;
            let tok_start = i;
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == b'\'' {
                    i += 1;
                    break;
                }
                bump_line!(bytes[i]);
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Literal(src[tok_start..safe_end(i)].to_owned()),
                line: tok_line,
            });
            continue;
        }
        // Numbers (digits, underscores, suffixes, hex/oct/bin, floats).
        if c.is_ascii_digit() {
            let tok_line = line;
            let tok_start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                // Don't eat `..` range punctuation or method calls like 1.max(2).
                if bytes[i] == b'.'
                    && (i + 1 >= bytes.len()
                        || bytes[i + 1] == b'.'
                        || bytes[i + 1].is_ascii_alphabetic())
                {
                    break;
                }
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Literal(src[tok_start..i].to_owned()),
                line: tok_line,
            });
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(src[start..i].to_owned()),
                line,
            });
            continue;
        }
        // Everything else: single punctuation character.
        tokens.push(Token {
            kind: TokenKind::Punct(c as char),
            line,
        });
        i += 1;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("fn main() {}");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("fn".into()),
                TokenKind::Ident("main".into()),
                TokenKind::Punct('('),
                TokenKind::Punct(')'),
                TokenKind::Punct('{'),
                TokenKind::Punct('}'),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_including_nested() {
        let ks = kinds("a // comment with { unsafe }\nb /* x /* nested { */ y */ c");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_braces_and_track_lines() {
        let toks = lex("let s = \"{ unsafe }\";\nx");
        assert!(toks.iter().all(|t| !t.is_punct('{')));
        let x = toks.last().unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn raw_strings_with_fences() {
        let ks = kinds(r###"let s = r#"quote " inside"#; done"###);
        assert!(ks.contains(&TokenKind::Ident("done".into())));
        // The literal is one token.
        assert_eq!(
            ks.iter()
                .filter(|k| matches!(k, TokenKind::Literal(_)))
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ks = kinds("&'a str; 'x'");
        assert!(ks.contains(&TokenKind::Lifetime("a".into())));
        assert!(ks.iter().any(|k| matches!(k, TokenKind::Literal(_))));
    }

    #[test]
    fn char_escape_does_not_derail() {
        let ks = kinds(r"let c = '\''; let d = '\n'; end");
        assert!(ks.contains(&TokenKind::Ident("end".into())));
    }

    #[test]
    fn numbers_including_floats_and_suffixes() {
        // Literals: 1, 2.5, 0xff, 1_000u64, 1, 3, and the 1 in max(1).
        let ks = kinds("1 2.5 0xff 1_000u64 1..3 x.max(1)");
        let literals = ks
            .iter()
            .filter(|k| matches!(k, TokenKind::Literal(_)))
            .count();
        assert_eq!(literals, 7);
        // The range `..` survives as punctuation.
        assert!(
            ks.iter()
                .filter(|k| matches!(k, TokenKind::Punct('.')))
                .count()
                >= 2
        );
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let ks = kinds(r##"b"bytes" br#"raw"# tail"##);
        assert!(ks.contains(&TokenKind::Ident("tail".into())));
        assert_eq!(
            ks.iter()
                .filter(|k| matches!(k, TokenKind::Literal(_)))
                .count(),
            2
        );
    }

    #[test]
    fn token_helpers() {
        let toks = lex("unsafe {");
        assert!(toks[0].is_ident("unsafe"));
        assert!(toks[1].is_punct('{'));
        assert_eq!(toks[0].ident(), Some("unsafe"));
    }
}
