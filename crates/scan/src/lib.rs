//! Unsafe-usage scanning of Rust source code — the measurement pipeline
//! behind §4 of the study.
//!
//! The paper manually inspected 850 unsafe usages after mechanically
//! locating every `unsafe` region, function, and trait in five applications
//! and five libraries (4990 usages in the apps; 1581 regions, 861 functions
//! and 12 traits in the standard library). This crate mechanizes the
//! locating *and* first-pass classification steps:
//!
//! * [`lexer`] — a from-scratch Rust lexer (comments, strings, raw strings,
//!   lifetimes, all punctuation) producing line-tagged tokens;
//! * [`scanner`] — finds every unsafe block / `unsafe fn` / `unsafe trait` /
//!   `unsafe impl`, records the operations inside (raw-pointer use, unsafe
//!   calls, static muts, union fields, FFI) and guesses the *purpose*
//!   using the paper's categories (code reuse, performance, thread sharing);
//! * [`stats`] — aggregates scanner output into the §4 summary tables;
//! * [`file`] — file-level scanning hardened for real trees (non-UTF-8,
//!   empty, and unreadable files become counted skip reasons, never
//!   aborts).

#![warn(missing_docs)]
pub mod file;
pub mod lexer;
pub mod samples;
pub mod scanner;
pub mod stats;

pub use file::{read_rust_source, scan_file, FileSkip};
pub use lexer::{lex, Token, TokenKind};
pub use scanner::{scan_source, OpKind, Purpose, UnsafeKind, UnsafeUsage};
pub use stats::{ScanStats, UsageBreakdown};
