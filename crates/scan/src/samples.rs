//! A bundled miniature Rust source corpus.
//!
//! Stands in for the five applications and five libraries the study scanned
//! (we cannot ship Servo/TiKV/Parity/Redox/Tock source offline). Each sample
//! reproduces an unsafe-usage shape the paper describes, so the scanner's
//! §4-style statistics have realistic inputs with known ground truth.

/// One corpus entry: a name and Rust source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Short identifier (used in reports).
    pub name: &'static str,
    /// The Rust source.
    pub source: &'static str,
    /// Ground truth: number of unsafe usages a correct scanner must find.
    pub expected_usages: usize,
}

/// Interior mutability via raw-pointer cast (the paper's Fig. 4).
pub const TEST_CELL: Sample = Sample {
    name: "test_cell",
    expected_usages: 2,
    source: r#"
struct TestCell { value: i32 }
unsafe impl Sync for TestCell {}
impl TestCell {
    fn set(&self, i: i32) {
        let p = &self.value as *const i32 as *mut i32;
        unsafe { *p = i };
    }
}
"#,
};

/// FFI reuse: calling into libc (the 42% "code reuse" purpose).
pub const FFI_WRAPPER: Sample = Sample {
    name: "ffi_wrapper",
    expected_usages: 3,
    source: r#"
mod libc { pub unsafe fn getmntent(f: i32) -> *mut u8 { 0 as *mut u8 } }
pub fn mounts() -> *mut u8 {
    unsafe { libc::getmntent(0) }
}
pub unsafe fn raw_handle(fd: i32) -> i64 { fd as i64 }
"#,
};

/// Performance escapes: unchecked indexing and unsafe memcpy (the 22%
/// "performance" purpose, §4.1's measured claims).
pub const FAST_PATH: Sample = Sample {
    name: "fast_path",
    expected_usages: 2,
    source: r#"
pub fn sum(v: &[u64]) -> u64 {
    let mut acc = 0;
    for i in 0..v.len() {
        acc += unsafe { *v.get_unchecked(i) };
    }
    acc
}
pub fn copy_fast(src: &[u8], dst: &mut [u8]) {
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), src.len());
    }
}
"#,
};

/// Global state shared across threads through a static mut (the 14%
/// "sharing across threads" purpose).
pub const GLOBAL_STATE: Sample = Sample {
    name: "global_state",
    expected_usages: 2,
    source: r#"
static mut DEPTH: usize = 0;
pub fn enter() { unsafe { DEPTH += 1; } }
pub fn leave() { unsafe { DEPTH -= 1; } }
"#,
};

/// An unsafe constructor marking, like `String::from_utf8_unchecked` —
/// the "label the constructor, not every method" practice of §4.1.
pub const UNSAFE_CTOR: Sample = Sample {
    name: "unsafe_ctor",
    expected_usages: 2,
    source: r#"
pub struct Ascii { bytes: Vec<u8> }
impl Ascii {
    /// # Safety
    /// Caller guarantees `bytes` are valid ASCII.
    pub unsafe fn from_bytes_unchecked(bytes: Vec<u8>) -> Ascii {
        Ascii { bytes }
    }
    pub fn as_str(&self) -> &str {
        unsafe { std::str::from_utf8_unchecked(&self.bytes) }
    }
}
"#,
};

/// A queue with interior unsafe methods, like the paper's Fig. 5.
pub const INTERIOR_QUEUE: Sample = Sample {
    name: "interior_queue",
    expected_usages: 2,
    source: r#"
pub struct Queue { buf: *mut i32, len: usize }
impl Queue {
    pub fn pop(&self) -> Option<i32> {
        if self.len == 0 { return None; }
        unsafe { Some(*self.buf.add(self.len - 1)) }
    }
    pub fn peek(&self) -> Option<&mut i32> {
        if self.len == 0 { return None; }
        unsafe { Some(&mut *self.buf.add(self.len - 1)) }
    }
}
"#,
};

/// A C-bindings module: the 42%-dominant "reuse existing code" purpose —
/// converting C arrays, calling glibc, wrapping foreign handles.
pub const C_BINDINGS: Sample = Sample {
    name: "c_bindings",
    expected_usages: 5,
    source: r#"
mod libc {
    pub unsafe fn read(fd: i32, buf: *mut u8, n: usize) -> isize { 0 }
    pub unsafe fn close(fd: i32) -> i32 { 0 }
}
pub fn read_all(fd: i32, buf: &mut [u8]) -> isize {
    unsafe { libc::read(fd, buf.as_mut_ptr(), buf.len()) }
}
pub fn close_quietly(fd: i32) {
    let _ = unsafe { libc::close(fd) };
}
pub fn c_array_to_slice(ptr: *const u8, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    unsafe {
        for i in 0..len {
            out.push(*ptr.wrapping_add(i));
        }
    }
    out
}
"#,
};

/// Entirely safe code — the scanner must stay quiet.
pub const ALL_SAFE: Sample = Sample {
    name: "all_safe",
    expected_usages: 0,
    source: r#"
// This module mentions unsafe only in comments and "unsafe strings".
pub fn add(a: i32, b: i32) -> i32 { a + b }
pub fn describe() -> &'static str { "no unsafe here" }
"#,
};

/// The full bundled corpus.
pub const ALL: &[Sample] = &[
    TEST_CELL,
    FFI_WRAPPER,
    FAST_PATH,
    GLOBAL_STATE,
    UNSAFE_CTOR,
    INTERIOR_QUEUE,
    C_BINDINGS,
    ALL_SAFE,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn every_sample_matches_its_ground_truth() {
        for s in ALL {
            let found = scan_source(s.source).len();
            assert_eq!(
                found, s.expected_usages,
                "sample `{}` expected {} usages, scanner found {found}",
                s.name, s.expected_usages
            );
        }
    }

    #[test]
    fn corpus_has_both_safe_and_unsafe_entries() {
        assert!(ALL.iter().any(|s| s.expected_usages == 0));
        assert!(ALL.iter().any(|s| s.expected_usages > 0));
        assert_eq!(ALL.len(), 8);
    }
}
