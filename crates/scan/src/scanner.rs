//! Locating and classifying unsafe usages in lexed Rust source.

use serde::{Deserialize, Serialize};

use crate::lexer::{lex, Token, TokenKind};

/// The syntactic form of an unsafe usage (the three forms the paper counts,
/// plus `unsafe impl`, which it counts under traits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnsafeKind {
    /// An `unsafe { .. }` region inside a function.
    Block,
    /// An `unsafe fn`.
    Function,
    /// An `unsafe trait` declaration.
    Trait,
    /// An `unsafe impl Trait for Type`.
    Impl,
}

/// The kind of operation found inside an unsafe region (§4.1: "most of them
/// (66%) are for (unsafe) memory operations … calling unsafe functions
/// counts for 29%").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Raw-pointer manipulation or casting (`*const`/`*mut`, `as *`,
    /// pointer deref).
    RawPointer,
    /// Calling a function (unsafe or external) from unsafe code.
    UnsafeCall,
    /// Access to a `static mut`.
    StaticMut,
    /// Union field access.
    UnionField,
    /// Call through an `extern`/FFI-looking path (`libc::`, `ffi::`, …).
    ForeignCall,
    /// `mem::transmute` and friends: type punning.
    Transmute,
}

/// The paper's purpose taxonomy for writing unsafe (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Purpose {
    /// Reusing existing code: FFI, converting C arrays, external libraries.
    CodeReuse,
    /// Skipping checks for speed (`get_unchecked`, `copy_nonoverlapping`,
    /// pointer arithmetic).
    Performance,
    /// Sharing data across threads (`impl Sync`/`Send`, static muts).
    ThreadSharing,
    /// Everything else (consistency markers, warnings, …).
    Other,
}

/// One located unsafe usage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnsafeUsage {
    /// Syntactic form.
    pub kind: UnsafeKind,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Operations observed inside the region/function body.
    pub ops: Vec<OpKind>,
    /// Heuristic purpose classification.
    pub purpose: Purpose,
    /// Name of the function or trait, when one follows the keyword.
    pub name: Option<String>,
}

/// Functions the paper calls out as performance escapes.
const PERF_CALLS: &[&str] = &[
    "get_unchecked",
    "get_unchecked_mut",
    "copy_nonoverlapping",
    "offset",
    "add",
    "slice_unchecked",
    "from_utf8_unchecked",
    "unwrap_unchecked",
];

/// Paths that signal reuse of non-Rust or pre-existing code.
const FFI_HINTS: &[&str] = &[
    "libc",
    "ffi",
    "sys",
    "extern_call",
    "c_char",
    "c_void",
    "glibc",
];

/// Scans one source string for unsafe usages.
pub fn scan_source(src: &str) -> Vec<UnsafeUsage> {
    let _span = rstudy_telemetry::span("scan.file");
    rstudy_telemetry::counter("scan.files", 1);
    rstudy_telemetry::counter("scan.lines", src.lines().count() as u64);
    let tokens = lex(src);
    let mut usages = Vec::new();
    let mut statics_mut: Vec<String> = collect_static_muts(&tokens);
    statics_mut.dedup();

    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("unsafe") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        // What follows `unsafe`?
        match tokens.get(i + 1) {
            Some(t) if t.is_ident("fn") => {
                let name = tokens.get(i + 2).and_then(|t| t.ident()).map(str::to_owned);
                let (ops, end) = match find_open_brace(&tokens, i + 2) {
                    Some(open) => scan_region(&tokens, open, &statics_mut),
                    None => (vec![], i + 3), // bodyless declaration
                };
                let purpose = classify_purpose(&ops, UnsafeKind::Function, &tokens[i..end]);
                usages.push(UnsafeUsage {
                    kind: UnsafeKind::Function,
                    line,
                    ops,
                    purpose,
                    name,
                });
                i = end;
            }
            Some(t) if t.is_ident("trait") => {
                let name = tokens.get(i + 2).and_then(|t| t.ident()).map(str::to_owned);
                usages.push(UnsafeUsage {
                    kind: UnsafeKind::Trait,
                    line,
                    ops: vec![],
                    purpose: Purpose::ThreadSharing,
                    name,
                });
                i += 2;
            }
            Some(t) if t.is_ident("impl") => {
                let name = tokens.get(i + 2).and_then(|t| t.ident()).map(str::to_owned);
                let purpose = match name.as_deref() {
                    Some("Sync" | "Send") => Purpose::ThreadSharing,
                    _ => Purpose::Other,
                };
                usages.push(UnsafeUsage {
                    kind: UnsafeKind::Impl,
                    line,
                    ops: vec![],
                    purpose,
                    name,
                });
                i += 2;
            }
            Some(t) if t.is_punct('{') => {
                let (ops, end) = scan_region(&tokens, i + 2, &statics_mut);
                let purpose = classify_purpose(&ops, UnsafeKind::Block, &tokens[i..end]);
                usages.push(UnsafeUsage {
                    kind: UnsafeKind::Block,
                    line,
                    ops,
                    purpose,
                    name: None,
                });
                i = end;
            }
            _ => {
                i += 1;
            }
        }
    }
    if rstudy_telemetry::enabled() {
        let blocks = usages
            .iter()
            .filter(|u| u.kind == UnsafeKind::Block)
            .count();
        rstudy_telemetry::counter("scan.unsafe_blocks", blocks as u64);
        rstudy_telemetry::counter("scan.unsafe_usages", usages.len() as u64);
    }
    usages
}

fn collect_static_muts(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for w in tokens.windows(3) {
        if w[0].is_ident("static") && w[1].is_ident("mut") {
            if let Some(name) = w[2].ident() {
                out.push(name.to_owned());
            }
        }
    }
    out
}

fn find_open_brace(tokens: &[Token], from: usize) -> Option<usize> {
    let mut depth_angle: i32 = 0;
    for (j, t) in tokens.iter().enumerate().skip(from) {
        match &t.kind {
            TokenKind::Punct('<') => depth_angle += 1,
            TokenKind::Punct('>') => depth_angle -= 1,
            TokenKind::Punct('{') if depth_angle <= 0 => return Some(j + 1),
            TokenKind::Punct(';') => return None, // declaration without body
            _ => {}
        }
    }
    None
}

/// Scans a brace-balanced region starting just *inside* its `{`.
/// Returns the ops found and the index just past the closing brace.
fn scan_region(tokens: &[Token], start: usize, statics_mut: &[String]) -> (Vec<OpKind>, usize) {
    let mut ops = Vec::new();
    let mut depth = 1;
    let mut j = start;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => depth -= 1,
            TokenKind::Ident(id) => {
                match id.as_str() {
                    "transmute" => ops.push(OpKind::Transmute),
                    _ if statics_mut.iter().any(|s| s == id) => ops.push(OpKind::StaticMut),
                    // `x.field` where x is a union cannot be decided
                    // lexically; `union` keyword access marker:
                    "union" => ops.push(OpKind::UnionField),
                    _ => {
                        // A call: identifier followed by `(` or `::<`.
                        let is_call = tokens.get(j + 1).is_some_and(|n| n.is_punct('('));
                        if is_call {
                            if FFI_HINTS.iter().any(|h| id.contains(h)) {
                                ops.push(OpKind::ForeignCall);
                            } else {
                                ops.push(OpKind::UnsafeCall);
                            }
                        }
                        // FFI path segments like libc::write.
                        if FFI_HINTS.contains(&id.as_str())
                            && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                        {
                            ops.push(OpKind::ForeignCall);
                        }
                    }
                }
            }
            TokenKind::Punct('*') => {
                // `*const` / `*mut` types, `as *`, and unary deref of a
                // pointer-ish expression.
                let next_ident = tokens.get(j + 1).and_then(|n| n.ident());
                let prev_is_as = j > 0 && tokens[j - 1].is_ident("as");
                if matches!(next_ident, Some("const" | "mut")) || prev_is_as {
                    ops.push(OpKind::RawPointer);
                } else if tokens
                    .get(j + 1)
                    .is_some_and(|n| matches!(&n.kind, TokenKind::Ident(_) | TokenKind::Punct('(')))
                    && j > 0
                    && (tokens[j - 1].is_punct('=')
                        || tokens[j - 1].is_punct('{')
                        || tokens[j - 1].is_punct(';')
                        || tokens[j - 1].is_punct('('))
                {
                    // A deref in statement/assignment position.
                    ops.push(OpKind::RawPointer);
                }
            }
            _ => {}
        }
        j += 1;
    }
    (ops, j)
}

fn classify_purpose(ops: &[OpKind], kind: UnsafeKind, region: &[Token]) -> Purpose {
    if ops.iter().any(|o| matches!(o, OpKind::ForeignCall)) {
        return Purpose::CodeReuse;
    }
    if ops.iter().any(|o| matches!(o, OpKind::StaticMut)) {
        return Purpose::ThreadSharing;
    }
    // Performance hints: unchecked calls inside the region itself.
    if region
        .iter()
        .any(|t| t.ident().is_some_and(|id| PERF_CALLS.contains(&id)))
    {
        return Purpose::Performance;
    }
    if ops
        .iter()
        .any(|o| matches!(o, OpKind::RawPointer | OpKind::Transmute))
    {
        return Purpose::CodeReuse;
    }
    if matches!(kind, UnsafeKind::Trait | UnsafeKind::Impl) {
        return Purpose::ThreadSharing;
    }
    if ops.iter().any(|o| matches!(o, OpKind::UnsafeCall)) {
        return Purpose::CodeReuse;
    }
    Purpose::Other
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_unsafe_blocks_functions_traits_impls() {
        let src = r#"
struct TestCell { value: i32 }
unsafe impl Sync for TestCell {}
unsafe trait Scary {}
unsafe fn raw_write(p: *mut i32) { *p = 1; }
fn set(c: &TestCell, i: i32) {
    let p = &c.value as *const i32 as *mut i32;
    unsafe { *p = i };
}
"#;
        let usages = scan_source(src);
        let kinds: Vec<UnsafeKind> = usages.iter().map(|u| u.kind).collect();
        assert!(kinds.contains(&UnsafeKind::Impl));
        assert!(kinds.contains(&UnsafeKind::Trait));
        assert!(kinds.contains(&UnsafeKind::Function));
        assert!(kinds.contains(&UnsafeKind::Block));
        assert_eq!(usages.len(), 4);
    }

    #[test]
    fn sync_impl_is_thread_sharing() {
        let usages = scan_source("unsafe impl Sync for T {}");
        assert_eq!(usages[0].purpose, Purpose::ThreadSharing);
        assert_eq!(usages[0].name.as_deref(), Some("Sync"));
    }

    #[test]
    fn unchecked_calls_classify_as_performance() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { unsafe { *v.get_unchecked(i) } }";
        let usages = scan_source(src);
        assert_eq!(usages.len(), 1);
        assert_eq!(usages[0].purpose, Purpose::Performance);
    }

    #[test]
    fn ffi_calls_classify_as_code_reuse() {
        let src = "fn now() -> i64 { unsafe { libc::time(std::ptr::null_mut()) } }";
        let usages = scan_source(src);
        assert_eq!(usages.len(), 1);
        assert_eq!(usages[0].purpose, Purpose::CodeReuse);
        assert!(usages[0].ops.contains(&OpKind::ForeignCall));
    }

    #[test]
    fn static_mut_access_is_thread_sharing() {
        let src = r#"
static mut COUNTER: u32 = 0;
fn bump() { unsafe { COUNTER += 1; } }
"#;
        let usages = scan_source(src);
        assert_eq!(usages.len(), 1);
        assert!(usages[0].ops.contains(&OpKind::StaticMut));
        assert_eq!(usages[0].purpose, Purpose::ThreadSharing);
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = r#"
// unsafe { this is a comment }
fn f() { let s = "unsafe { not code }"; }
"#;
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn unsafe_fn_records_name_and_ops() {
        let src = "unsafe fn fiddle(p: *mut u8) { *p = 0; transmute::<u8,i8>(1); }";
        let usages = scan_source(src);
        assert_eq!(usages[0].name.as_deref(), Some("fiddle"));
        assert!(usages[0].ops.contains(&OpKind::Transmute));
        assert!(usages[0].ops.contains(&OpKind::RawPointer));
    }

    #[test]
    fn nested_braces_keep_region_bounds() {
        let src = r#"
fn f() {
    unsafe { if x { y(); } else { z(); } }
    not_unsafe();
}
"#;
        let usages = scan_source(src);
        assert_eq!(usages.len(), 1);
        // `not_unsafe` is outside the region, so only y and z are calls.
        let calls = usages[0]
            .ops
            .iter()
            .filter(|o| matches!(o, OpKind::UnsafeCall))
            .count();
        assert_eq!(calls, 2);
    }

    #[test]
    fn unsafe_fn_without_body_is_handled() {
        // Trait method declaration: `unsafe fn f(&self);`
        let src = "trait T { unsafe fn f(&self); }";
        let usages = scan_source(src);
        assert_eq!(usages.len(), 1);
        assert_eq!(usages[0].kind, UnsafeKind::Function);
        assert!(usages[0].ops.is_empty());
    }
}
