//! File-level scanning hardened for real directory trees.
//!
//! The in-memory scanner ([`crate::scan_source`]) assumes it is handed
//! valid UTF-8; real trees contain files that are unreadable (permissions,
//! races with deletion), not UTF-8 (latin-1 comments, embedded test
//! blobs), or empty. Walking a tree must *count* those files and move on —
//! never abort the whole walk — so every failure mode is folded into the
//! [`FileSkip`] taxonomy shared with the ingest pipeline.

use std::fmt;
use std::path::Path;

use crate::scanner::{scan_source, UnsafeUsage};

/// Why a file was skipped instead of scanned. The variants double as the
/// stable skip-reason keys recorded in ingest manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileSkip {
    /// The file could not be opened or read (permissions, vanished, ...).
    Unreadable,
    /// The contents are not valid UTF-8.
    NonUtf8,
    /// The file is empty (zero bytes, or only whitespace).
    Empty,
}

impl FileSkip {
    /// The stable key used in skip-reason counters and manifests.
    pub fn key(self) -> &'static str {
        match self {
            FileSkip::Unreadable => "unreadable",
            FileSkip::NonUtf8 => "non-utf8",
            FileSkip::Empty => "empty",
        }
    }
}

impl fmt::Display for FileSkip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Reads a Rust source file, classifying every failure mode as a
/// [`FileSkip`] instead of an error that could abort a tree walk.
pub fn read_rust_source(path: &Path) -> Result<String, FileSkip> {
    let bytes = std::fs::read(path).map_err(|_| FileSkip::Unreadable)?;
    let src = String::from_utf8(bytes).map_err(|_| FileSkip::NonUtf8)?;
    if src.trim().is_empty() {
        return Err(FileSkip::Empty);
    }
    Ok(src)
}

/// Scans one file for unsafe usages; skip reasons are data, not errors.
pub fn scan_file(path: &Path) -> Result<Vec<UnsafeUsage>, FileSkip> {
    let src = read_rust_source(path)?;
    Ok(scan_source(&src))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rstudy-scan-file-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn scans_a_normal_file() {
        let path = write_temp("ok.rs", b"fn f(p: *mut i32) { unsafe { *p = 1; } }");
        let usages = scan_file(&path).unwrap();
        assert_eq!(usages.len(), 1);
    }

    #[test]
    fn missing_file_is_unreadable_not_a_panic() {
        let path = Path::new("/nonexistent/definitely/not/here.rs");
        assert_eq!(scan_file(path).unwrap_err(), FileSkip::Unreadable);
    }

    #[test]
    fn non_utf8_is_skipped_with_reason() {
        let path = write_temp("bad.rs", &[0x66, 0x6e, 0x20, 0xff, 0xfe, 0x00]);
        assert_eq!(scan_file(&path).unwrap_err(), FileSkip::NonUtf8);
    }

    #[test]
    fn empty_and_whitespace_files_are_skipped() {
        let empty = write_temp("empty.rs", b"");
        assert_eq!(scan_file(&empty).unwrap_err(), FileSkip::Empty);
        let blank = write_temp("blank.rs", b"  \n\t\n");
        assert_eq!(scan_file(&blank).unwrap_err(), FileSkip::Empty);
    }

    #[test]
    fn skip_keys_are_stable() {
        assert_eq!(FileSkip::Unreadable.key(), "unreadable");
        assert_eq!(FileSkip::NonUtf8.key(), "non-utf8");
        assert_eq!(FileSkip::Empty.key(), "empty");
    }
}
