//! Aggregation of scanner output into §4-style statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::scanner::{OpKind, Purpose, UnsafeKind, UnsafeUsage};

/// Counts per category with percentage helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UsageBreakdown {
    /// Usages per syntactic form.
    pub by_kind: BTreeMap<String, usize>,
    /// Operations per kind across all usages.
    pub by_op: BTreeMap<String, usize>,
    /// Usages per inferred purpose.
    pub by_purpose: BTreeMap<String, usize>,
}

/// Statistics over one or more scanned sources.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Total unsafe usages found.
    pub total: usize,
    /// Usages whose region performs at least one classified operation.
    pub usages_with_ops: usize,
    /// Usages whose region performs a memory operation (raw pointer or
    /// transmute).
    pub usages_with_memory_op: usize,
    /// The categorical breakdowns.
    pub breakdown: UsageBreakdown,
}

fn kind_name(k: UnsafeKind) -> &'static str {
    match k {
        UnsafeKind::Block => "block",
        UnsafeKind::Function => "function",
        UnsafeKind::Trait => "trait",
        UnsafeKind::Impl => "impl",
    }
}

fn op_name(o: OpKind) -> &'static str {
    match o {
        OpKind::RawPointer => "raw-pointer",
        OpKind::UnsafeCall => "call",
        OpKind::StaticMut => "static-mut",
        OpKind::UnionField => "union-field",
        OpKind::ForeignCall => "foreign-call",
        OpKind::Transmute => "transmute",
    }
}

fn purpose_name(p: Purpose) -> &'static str {
    match p {
        Purpose::CodeReuse => "code-reuse",
        Purpose::Performance => "performance",
        Purpose::ThreadSharing => "thread-sharing",
        Purpose::Other => "other",
    }
}

impl ScanStats {
    /// Aggregates a batch of usages.
    pub fn from_usages<'a>(usages: impl IntoIterator<Item = &'a UnsafeUsage>) -> ScanStats {
        let mut stats = ScanStats::default();
        for u in usages {
            stats.total += 1;
            if !u.ops.is_empty() {
                stats.usages_with_ops += 1;
            }
            if u.ops
                .iter()
                .any(|o| matches!(o, OpKind::RawPointer | OpKind::Transmute))
            {
                stats.usages_with_memory_op += 1;
            }
            *stats
                .breakdown
                .by_kind
                .entry(kind_name(u.kind).to_owned())
                .or_insert(0) += 1;
            *stats
                .breakdown
                .by_purpose
                .entry(purpose_name(u.purpose).to_owned())
                .or_insert(0) += 1;
            for op in &u.ops {
                *stats
                    .breakdown
                    .by_op
                    .entry(op_name(*op).to_owned())
                    .or_insert(0) += 1;
            }
        }
        stats
    }

    /// Merges another batch in.
    pub fn merge(&mut self, other: &ScanStats) {
        self.total += other.total;
        self.usages_with_ops += other.usages_with_ops;
        self.usages_with_memory_op += other.usages_with_memory_op;
        for (k, v) in &other.breakdown.by_kind {
            *self.breakdown.by_kind.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.breakdown.by_op {
            *self.breakdown.by_op.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.breakdown.by_purpose {
            *self.breakdown.by_purpose.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Percentage of usages whose purpose is `name` (0.0 when empty).
    pub fn purpose_percent(&self, name: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.breakdown.by_purpose.get(name).copied().unwrap_or(0);
        100.0 * n as f64 / self.total as f64
    }

    /// Percentage of operation-performing usages whose operations include
    /// an unsafe *memory* operation (raw pointers, transmutes) — the
    /// paper's "most of them (66%) are for (unsafe) memory operations".
    pub fn memory_op_percent(&self) -> f64 {
        if self.usages_with_ops == 0 {
            return 0.0;
        }
        100.0 * self.usages_with_memory_op as f64 / self.usages_with_ops as f64
    }

    /// Renders a report in the shape of the §4 prose statistics.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "unsafe usages: {}", self.total);
        let _ = writeln!(s, "  by form:");
        for (k, v) in &self.breakdown.by_kind {
            let _ = writeln!(s, "    {k:<10} {v}");
        }
        let _ = writeln!(s, "  operations inside unsafe regions:");
        for (k, v) in &self.breakdown.by_op {
            let _ = writeln!(s, "    {k:<14} {v}");
        }
        let _ = writeln!(s, "  inferred purpose:");
        for (k, v) in &self.breakdown.by_purpose {
            let _ = writeln!(s, "    {k:<14} {v} ({:.0}%)", self.purpose_percent(k));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::scanner::scan_source;

    fn corpus_stats() -> ScanStats {
        let mut stats = ScanStats::default();
        for s in samples::ALL {
            let usages = scan_source(s.source);
            stats.merge(&ScanStats::from_usages(&usages));
        }
        stats
    }

    #[test]
    fn totals_match_sample_ground_truth() {
        let stats = corpus_stats();
        let expected: usize = samples::ALL.iter().map(|s| s.expected_usages).sum();
        assert_eq!(stats.total, expected);
    }

    #[test]
    fn all_purposes_appear_in_the_corpus() {
        let stats = corpus_stats();
        for p in ["code-reuse", "performance", "thread-sharing"] {
            assert!(
                stats.breakdown.by_purpose.contains_key(p),
                "missing purpose {p}: {:?}",
                stats.breakdown.by_purpose
            );
        }
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let stats = corpus_stats();
        let sum: f64 = stats
            .breakdown
            .by_purpose
            .keys()
            .map(|k| stats.purpose_percent(k))
            .sum();
        assert!((sum - 100.0).abs() < 1e-6, "{sum}");
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = ScanStats::default();
        assert_eq!(stats.purpose_percent("code-reuse"), 0.0);
        assert_eq!(stats.memory_op_percent(), 0.0);
    }

    #[test]
    fn render_mentions_forms_and_purposes() {
        let stats = corpus_stats();
        let s = stats.render();
        assert!(s.contains("unsafe usages:"));
        assert!(s.contains("block"));
        assert!(s.contains("code-reuse"));
    }
}
