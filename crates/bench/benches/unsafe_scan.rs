//! SEC4-USAGE — the §4 scanning pipeline: print the unsafe-usage summary
//! over the bundled corpus plus the paper's encoded statistics, then
//! benchmark lexer and scanner throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rstudy_dataset::unsafe_usages;
use rstudy_scan::stats::ScanStats;
use rstudy_scan::{lex, samples, scan_source};

fn print_stats_once() {
    let mut stats = ScanStats::default();
    for s in samples::ALL {
        stats.merge(&ScanStats::from_usages(&scan_source(s.source)));
    }
    println!("\n== §4: scanner output over the bundled corpus ==");
    print!("{}", stats.render());
    println!("== §4: the paper's published statistics (encoded) ==");
    print!("{}", unsafe_usages::render());
}

fn bench_scan(c: &mut Criterion) {
    print_stats_once();

    // A larger synthetic tree: the corpus repeated to ~100 KB of source.
    let mut big = String::new();
    while big.len() < 100_000 {
        for s in samples::ALL {
            big.push_str(s.source);
        }
    }

    let mut group = c.benchmark_group("unsafe_scan");
    group.throughput(Throughput::Bytes(big.len() as u64));
    group.bench_function("lex_100kb", |b| b.iter(|| black_box(lex(&big)).len()));
    group.bench_function("scan_100kb", |b| {
        b.iter(|| black_box(scan_source(&big)).len())
    });
    group.bench_function("scan_corpus", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for s in samples::ALL {
                n += scan_source(black_box(s.source)).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
