//! Dynamic-baseline benchmarks: print the static-vs-dynamic coverage split
//! over the corpus (the §7 comparison), then benchmark interpreter
//! throughput on representative programs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rstudy_core::suite::DetectorSuite;
use rstudy_corpus::{all_entries, DynamicExpectation};
use rstudy_interp::{Interpreter, InterpreterConfig, SchedulePolicy};
use rstudy_mir::parse::parse_program;

fn config() -> InterpreterConfig {
    InterpreterConfig {
        max_steps: 200_000,
        policy: SchedulePolicy::RoundRobin,
        detect_races: true,
        trace_tail: 0,
    }
}

fn print_coverage_once() {
    let suite = DetectorSuite::new();
    let mut static_only = Vec::new();
    let mut dynamic_only = Vec::new();
    let mut both = 0usize;
    let mut buggy = 0usize;
    for entry in all_entries() {
        let is_buggy = !entry.static_bugs.is_empty() || entry.dynamic != DynamicExpectation::Clean;
        if !is_buggy {
            continue;
        }
        buggy += 1;
        let program = entry.program();
        let s = !suite.check_program(&program).is_clean();
        let o = Interpreter::new(&program).with_config(config()).run();
        let d = o.fault.is_some() || !o.races.is_empty();
        match (s, d) {
            (true, true) => both += 1,
            (true, false) => static_only.push(entry.name),
            (false, true) => dynamic_only.push(entry.name),
            (false, false) => {}
        }
    }
    println!("\n== static vs dynamic coverage over {buggy} buggy corpus entries ==");
    println!("caught by both: {both}");
    println!("static only (dynamic run misses them): {static_only:?}");
    println!("dynamic only (static analysis misses them): {dynamic_only:?}");
    println!("(the two 'only' sets are the paper's argument for building both kinds)");
}

/// A CPU-bound loop program for throughput measurement.
const HOT_LOOP: &str = r#"
fn main() -> int {
    let _1 as i: int;
    let _2 as acc: int;

    bb0: {
        StorageLive(_1);
        _1 = const 0;
        StorageLive(_2);
        _2 = const 0;
        goto -> bb1;
    }

    bb1: {
        switchInt(_1) -> [2000: bb3, otherwise: bb2];
    }

    bb2: {
        _2 = _2 + _1;
        _1 = _1 + const 1;
        goto -> bb1;
    }

    bb3: {
        _0 = move _2;
        return;
    }
}
"#;

fn bench_interp(c: &mut Criterion) {
    print_coverage_once();

    let hot = parse_program(HOT_LOOP).expect("parse");
    let corpus: Vec<_> = all_entries().iter().map(|e| e.program()).collect();

    let mut group = c.benchmark_group("interp");
    group.bench_function("hot_loop_2000_iters", |b| {
        b.iter(|| black_box(Interpreter::new(&hot).with_config(config()).run().steps))
    });
    group.bench_function("hot_loop_no_race_detection", |b| {
        let mut cfg = config();
        cfg.detect_races = false;
        b.iter(|| black_box(Interpreter::new(&hot).with_config(cfg).run().steps))
    });
    group.bench_function("full_corpus_execution", |b| {
        b.iter(|| {
            let mut steps = 0u64;
            for p in &corpus {
                steps += Interpreter::new(black_box(p))
                    .with_config(config())
                    .run()
                    .steps;
            }
            black_box(steps)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
