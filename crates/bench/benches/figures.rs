//! FIG1–FIG2 — regenerate both figures of the study (printed once) and
//! benchmark the series construction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rstudy_dataset::figures::{figure1, figure2, render_figure1, render_figure2};

fn print_figures_once() {
    println!("\n== Figure 1: Rust history (feature changes + KLOC per release) ==");
    print!("{}", render_figure1());
    println!("\n== Figure 2: fix dates of the 170 studied bugs ==");
    print!("{}", render_figure2());
}

fn bench_figures(c: &mut Criterion) {
    print_figures_once();
    let mut group = c.benchmark_group("figures");
    group.bench_function("figure1_series", |b| b.iter(|| black_box(figure1())));
    group.bench_function("figure2_histogram", |b| b.iter(|| black_box(figure2())));
    group.bench_function("figure1_render", |b| b.iter(|| black_box(render_figure1())));
    group.bench_function("figure2_render", |b| b.iter(|| black_box(render_figure2())));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
