//! INGEST — the ingestion pipeline's hot paths on real inputs: the
//! scanner lexer over this workspace's own source tree, the lowerer that
//! turns real function bodies into the textual MIR dialect, and the MIR
//! text parser over the lowered programs an ingest run actually produces.

use std::path::PathBuf;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rstudy_ingest::{ingest, lower_source};
use rstudy_mir::parse::parse_program;
use rstudy_scan::{lex, read_rust_source, scan_source};

/// The workspace's `crates/` directory — the self-host corpus.
fn crates_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("bench crate lives under crates/")
        .to_path_buf()
}

fn bench_ingested(c: &mut Criterion) {
    let root = crates_root();

    // Real source text, concatenated to a bounded working set.
    let walk = rstudy_ingest::walk_rust_files(&root).expect("walk crates/");
    let mut src = String::new();
    for f in &walk.files {
        if let Ok(text) = read_rust_source(&f.path) {
            src.push_str(&text);
        }
        if src.len() >= 200_000 {
            break;
        }
    }

    // The lowered programs a self-host ingest registers.
    let manifest = ingest(&root, "bench").expect("ingest crates/");
    let programs: Vec<String> = manifest
        .lowered_units()
        .map(|(_, unit)| unit.program.clone())
        .collect();
    let lowered_bytes: u64 = programs.iter().map(|p| p.len() as u64).sum();
    println!(
        "\n== ingest self-host input: {} file(s), {} lowered program(s), {} lowered bytes ==",
        manifest.summary.files_scanned,
        programs.len(),
        lowered_bytes,
    );

    let mut group = c.benchmark_group("ingest_scan");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("lex_ingested", |b| b.iter(|| black_box(lex(&src)).len()));
    group.bench_function("scan_ingested", |b| {
        b.iter(|| black_box(scan_source(&src)).len())
    });
    group.bench_function("lower_ingested", |b| {
        b.iter(|| black_box(lower_source(&src)).functions.len())
    });
    group.finish();

    let mut group = c.benchmark_group("ingest_mir_parse");
    group.throughput(Throughput::Bytes(lowered_bytes));
    group.bench_function("parse_lowered", |b| {
        b.iter(|| {
            let mut fns = 0usize;
            for p in &programs {
                fns += parse_program(black_box(p))
                    .expect("lowered programs parse")
                    .len();
            }
            black_box(fns)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingested);
criterion_main!(benches);
