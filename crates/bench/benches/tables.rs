//! TAB1–TAB4 — regenerate every table of the study from the encoded
//! datasets (printed once up front) and benchmark the regeneration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rstudy_dataset::tables::{render_table1, render_table2, render_table3, render_table4};

fn print_tables_once() {
    println!("\n== Table 1: studied applications and libraries ==");
    print!("{}", render_table1());
    println!("\n== Table 2: memory-bug categories ==");
    print!("{}", render_table2());
    println!("\n== Table 3: synchronization in blocking bugs ==");
    print!("{}", render_table3());
    println!("\n== Table 4: data sharing in non-blocking bugs ==");
    print!("{}", render_table4());
}

fn bench_tables(c: &mut Criterion) {
    print_tables_once();
    let mut group = c.benchmark_group("tables");
    group.bench_function("table1", |b| b.iter(|| black_box(render_table1())));
    group.bench_function("table2", |b| b.iter(|| black_box(render_table2())));
    group.bench_function("table3", |b| b.iter(|| black_box(render_table3())));
    group.bench_function("table4", |b| b.iter(|| black_box(render_table4())));
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
