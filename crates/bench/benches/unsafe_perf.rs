//! PERF-MEMCPY / PERF-GET / PERF-PTR — the §4.1 performance claims behind
//! the "22% of unsafe usages are for performance" finding:
//!
//! * "unsafe memory copy with `ptr::copy_nonoverlapping()` is 23% faster
//!   than `slice::copy_from_slice()` in some cases";
//! * "unsafe memory access with `slice::get_unchecked()` is 4–5× faster
//!   than the safe memory access with boundary checking";
//! * "traversing an array by pointer computing (`ptr::offset()`) and
//!   dereferencing is also 4–5× faster than the safe array access with
//!   boundary checking".
//!
//! We reproduce the *shape* (unsafe ≥ safe, with the checked-access gap
//! much larger than the memcpy gap); exact factors depend on the host and
//! on how much the optimizer can already elide bounds checks. The checked
//! variants deliberately use patterns the optimizer cannot remove (indices
//! loaded from memory), matching the paper's "some cases".
//!
//! Also included: a lock-vs-atomic counter bench (crossbeam scoped threads,
//! std vs parking_lot mutexes) giving context for the Table 3/4 sharing
//! mechanisms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rstudy_bench::{bytes, words};

fn bench_memcpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_memcpy");
    for &size in &[16usize, 1024, 65536] {
        let src = bytes(size, 42);
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("safe_copy_from_slice", size),
            &size,
            |b, _| {
                b.iter(|| {
                    dst.copy_from_slice(black_box(&src));
                    black_box(dst[0])
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unsafe_copy_nonoverlapping", size),
            &size,
            |b, _| {
                b.iter(|| {
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            black_box(src.as_ptr()),
                            dst.as_mut_ptr(),
                            size,
                        );
                    }
                    black_box(dst[0])
                })
            },
        );
    }
    group.finish();
}

/// The ALU-bound, L1-resident access pattern where the bounds check sits
/// on the critical path (the gap the paper measured; on 2026 rustc the
/// check is ~2× — loop versioning and branch prediction have shrunk the
/// 2019-era 4-5×, but unsafe still clearly wins). The workload functions
/// are `#[inline(never)]` so codegen is identical across criterion runs.
const HOT_ITERS: usize = 100_000;

#[inline(always)]
fn next_index(i: usize) -> usize {
    i.wrapping_mul(5).wrapping_add(1) & 255
}

#[inline(never)]
fn hot_checked(v: &[u64], n: usize) -> u64 {
    let mut acc = 0u64;
    let mut i = 0usize;
    for _ in 0..n {
        acc = acc.wrapping_add(v[i]);
        i = next_index(i);
    }
    acc
}

#[inline(never)]
fn hot_unchecked(v: &[u64], n: usize) -> u64 {
    let mut acc = 0u64;
    let mut i = 0usize;
    for _ in 0..n {
        acc = acc.wrapping_add(unsafe { *v.get_unchecked(i) });
        i = next_index(i);
    }
    acc
}

#[inline(never)]
fn hot_ptr_offset(v: &[u64], n: usize) -> u64 {
    let base = v.as_ptr();
    let mut acc = 0u64;
    let mut i = 0usize;
    for _ in 0..n {
        acc = acc.wrapping_add(unsafe { *base.add(i) });
        i = next_index(i);
    }
    acc
}

fn bench_indexed_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_get_unchecked");
    let data = words(256, 7);
    group.throughput(Throughput::Elements(HOT_ITERS as u64));
    group.bench_function("safe_checked_index", |b| {
        b.iter(|| black_box(hot_checked(black_box(&data), black_box(HOT_ITERS))))
    });
    group.bench_function("unsafe_get_unchecked", |b| {
        b.iter(|| black_box(hot_unchecked(black_box(&data), black_box(HOT_ITERS))))
    });
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_ptr_offset");
    let data = words(256, 11);
    group.throughput(Throughput::Elements(HOT_ITERS as u64));
    group.bench_function("safe_checked_traversal", |b| {
        b.iter(|| black_box(hot_checked(black_box(&data), black_box(HOT_ITERS))))
    });
    group.bench_function("unsafe_ptr_offset_traversal", |b| {
        b.iter(|| black_box(hot_ptr_offset(black_box(&data), black_box(HOT_ITERS))))
    });
    group.finish();
}

fn bench_sharing_mechanisms(c: &mut Criterion) {
    const THREADS: usize = 4;
    const OPS: u64 = 10_000;
    let mut group = c.benchmark_group("sharing_mechanisms");
    group.bench_function("std_mutex_counter", |b| {
        b.iter(|| {
            let counter = Mutex::new(0u64);
            crossbeam::scope(|s| {
                for _ in 0..THREADS {
                    s.spawn(|_| {
                        for _ in 0..OPS {
                            *counter.lock().unwrap() += 1;
                        }
                    });
                }
            })
            .unwrap();
            let total = *counter.lock().unwrap();
            black_box(total)
        })
    });
    group.bench_function("parking_lot_mutex_counter", |b| {
        b.iter(|| {
            let counter = parking_lot::Mutex::new(0u64);
            crossbeam::scope(|s| {
                for _ in 0..THREADS {
                    s.spawn(|_| {
                        for _ in 0..OPS {
                            *counter.lock() += 1;
                        }
                    });
                }
            })
            .unwrap();
            let total = *counter.lock();
            black_box(total)
        })
    });
    group.bench_function("atomic_counter", |b| {
        b.iter(|| {
            let counter = AtomicU64::new(0);
            crossbeam::scope(|s| {
                for _ in 0..THREADS {
                    s.spawn(|_| {
                        for _ in 0..OPS {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            })
            .unwrap();
            black_box(counter.load(Ordering::Relaxed))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_memcpy,
    bench_indexed_access,
    bench_traversal,
    bench_sharing_mechanisms
);
criterion_main!(benches);
