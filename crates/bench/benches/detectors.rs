//! DET-UAF / DET-DL / DET-COVERAGE — the §7 detector evaluation: print the
//! found/false-positive counts (the paper's headline 4 + 3FP / 6 + 0FP),
//! then benchmark detector throughput over the corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rstudy_core::detectors::{Detector, DoubleLock, UseAfterFree};
use rstudy_core::suite::DetectorSuite;
use rstudy_core::{BugClass, DetectorConfig};
use rstudy_corpus::all_entries;
use rstudy_corpus::detector_eval::{DL_CLEAN, DL_TARGETS, UAF_FALSE_POSITIVES, UAF_TARGETS};

fn print_eval_once() {
    let precise = DetectorConfig::new();
    let naive = DetectorConfig::naive();

    let uaf_found = UAF_TARGETS
        .iter()
        .filter(|e| {
            UseAfterFree
                .check_program(&e.program(), &precise)
                .iter()
                .any(|d| d.bug_class == BugClass::UseAfterFree)
        })
        .count();
    let fp_naive = UAF_FALSE_POSITIVES
        .iter()
        .filter(|e| !UseAfterFree.check_program(&e.program(), &naive).is_empty())
        .count();
    let fp_precise = UAF_FALSE_POSITIVES
        .iter()
        .filter(|e| {
            !UseAfterFree
                .check_program(&e.program(), &precise)
                .is_empty()
        })
        .count();
    let dl_found = DL_TARGETS
        .iter()
        .filter(|e| {
            DoubleLock
                .check_program(&e.program(), &precise)
                .iter()
                .any(|d| d.bug_class == BugClass::DoubleLock)
        })
        .count();
    let dl_fp = DL_CLEAN
        .iter()
        .filter(|e| !DoubleLock.check_program(&e.program(), &precise).is_empty())
        .count();

    println!("\n== §7 detector evaluation ==");
    println!("use-after-free: {uaf_found}/4 seeded bugs found (paper: 4 previously unknown)");
    println!("use-after-free false positives: {fp_naive}/3 in naive interprocedural mode (paper: 3), {fp_precise} in precise mode");
    println!("double-lock:    {dl_found}/6 seeded bugs found (paper: 6 previously unknown)");
    println!("double-lock false positives: {dl_fp} (paper: 0)");

    // DET-COVERAGE: which buggy corpus entries each side catches.
    let suite = DetectorSuite::new();
    let buggy: Vec<_> = all_entries()
        .into_iter()
        .filter(|e| !e.static_bugs.is_empty())
        .collect();
    let caught = buggy
        .iter()
        .filter(|e| !suite.check_program(&e.program()).is_clean())
        .count();
    println!(
        "coverage: static suite reports on {caught}/{} statically-buggy corpus entries",
        buggy.len()
    );
}

fn bench_detectors(c: &mut Criterion) {
    print_eval_once();

    let programs: Vec<_> = all_entries().iter().map(|e| e.program()).collect();
    let suite = DetectorSuite::new();
    let config = DetectorConfig::new();

    let mut group = c.benchmark_group("detectors");
    group.bench_function("suite_full_corpus", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &programs {
                total += suite.check_program(black_box(p)).len();
            }
            black_box(total)
        })
    });
    // Sequential baseline: one worker, same shared cache. The delta to
    // `suite_full_corpus` (auto-sized pool) is the parallel speedup.
    let suite_seq = DetectorSuite::new().with_jobs(1);
    group.bench_function("suite_full_corpus_jobs1", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &programs {
                total += suite_seq.check_program(black_box(p)).len();
            }
            black_box(total)
        })
    });
    group.bench_function("uaf_eval_corpus", |b| {
        let eval: Vec<_> = UAF_TARGETS
            .iter()
            .chain(UAF_FALSE_POSITIVES)
            .map(|e| e.program())
            .collect();
        b.iter(|| {
            let mut total = 0usize;
            for p in &eval {
                total += UseAfterFree.check_program(black_box(p), &config).len();
            }
            black_box(total)
        })
    });
    group.bench_function("double_lock_eval_corpus", |b| {
        let eval: Vec<_> = DL_TARGETS
            .iter()
            .chain(DL_CLEAN)
            .map(|e| e.program())
            .collect();
        b.iter(|| {
            let mut total = 0usize;
            for p in &eval {
                total += DoubleLock.check_program(black_box(p), &config).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
