//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Interprocedural mode** — the §7.1 naive summary ("every pointer
//!   argument is dereferenced") vs the precise per-callee summary: the
//!   precision difference is printed (3 FPs vs 0), and the cost difference
//!   is measured.
//! * **Race detection** — interpreter throughput with the lockset monitor
//!   on vs off (the price of the dynamic-baseline's main feature).
//! * **MIR simplification** — detector throughput on raw vs simplified
//!   corpus bodies (cleanup passes as an analysis preconditioner).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rstudy_core::detectors::{Detector, UseAfterFree};
use rstudy_core::DetectorConfig;
use rstudy_corpus::all_entries;
use rstudy_corpus::detector_eval::{UAF_FALSE_POSITIVES, UAF_TARGETS};
use rstudy_interp::{Interpreter, InterpreterConfig, SchedulePolicy};
use rstudy_mir::transform::simplify;

fn print_precision_ablation() {
    let naive = DetectorConfig::naive();
    let precise = DetectorConfig::new();
    let count = |cfg: &DetectorConfig| -> (usize, usize) {
        let tp = UAF_TARGETS
            .iter()
            .filter(|e| !UseAfterFree.check_program(&e.program(), cfg).is_empty())
            .count();
        let fp = UAF_FALSE_POSITIVES
            .iter()
            .filter(|e| !UseAfterFree.check_program(&e.program(), cfg).is_empty())
            .count();
        (tp, fp)
    };
    let (tp_n, fp_n) = count(&naive);
    let (tp_p, fp_p) = count(&precise);
    println!("\n== ablation: interprocedural summary mode ==");
    println!("naive:   {tp_n}/4 targets found, {fp_n}/3 FP programs flagged");
    println!("precise: {tp_p}/4 targets found, {fp_p}/3 FP programs flagged");
}

fn bench_interproc_mode(c: &mut Criterion) {
    print_precision_ablation();
    let programs: Vec<_> = UAF_TARGETS
        .iter()
        .chain(UAF_FALSE_POSITIVES)
        .map(|e| e.program())
        .collect();
    let naive = DetectorConfig::naive();
    let precise = DetectorConfig::new();
    let mut group = c.benchmark_group("ablation_interproc");
    group.bench_function("uaf_naive_summaries", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &programs {
                n += UseAfterFree.check_program(black_box(p), &naive).len();
            }
            black_box(n)
        })
    });
    group.bench_function("uaf_precise_summaries", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &programs {
                n += UseAfterFree.check_program(black_box(p), &precise).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_race_detection_cost(c: &mut Criterion) {
    let entry = all_entries()
        .into_iter()
        .find(|e| e.name == "race_fixed_mutex")
        .expect("corpus entry");
    let program = entry.program();
    let mut group = c.benchmark_group("ablation_race_detection");
    for (label, detect) in [("lockset_on", true), ("lockset_off", false)] {
        let config = InterpreterConfig {
            max_steps: 200_000,
            policy: SchedulePolicy::RoundRobin,
            detect_races: detect,
            trace_tail: 0,
        };
        group.bench_function(label, |b| {
            b.iter(|| black_box(Interpreter::new(&program).with_config(config).run().steps))
        });
    }
    group.finish();
}

/// The tentpole ablation: worker count × shared analysis cache, over the
/// whole corpus. `jobs1_cache_off` approximates the old sequential suite
/// (every detector recomputing per-body analyses); `jobsN_cache_on` is the
/// shipping configuration.
fn bench_parallel_cache(c: &mut Criterion) {
    let programs: Vec<_> = all_entries().iter().map(|e| e.program()).collect();
    let jobs_n = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("ablation_parallel_cache");
    for (label, jobs, cache) in [
        ("jobs1_cache_off", 1, false),
        ("jobs1_cache_on", 1, true),
        ("jobsN_cache_off", jobs_n, false),
        ("jobsN_cache_on", jobs_n, true),
    ] {
        let suite = rstudy_core::suite::DetectorSuite::new()
            .with_jobs(jobs)
            .with_shared_cache(cache);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut n = 0usize;
                for p in &programs {
                    n += suite.check_program(black_box(p)).len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_simplify_preconditioning(c: &mut Criterion) {
    let raw: Vec<_> = all_entries().iter().map(|e| e.program()).collect();
    let simplified: Vec<_> = raw
        .iter()
        .map(|p| {
            let mut bodies: Vec<_> = p.bodies().cloned().collect();
            for b in &mut bodies {
                simplify(b);
            }
            rstudy_mir::Program::from_bodies(bodies)
        })
        .collect();
    let suite = rstudy_core::suite::DetectorSuite::new();
    let mut group = c.benchmark_group("ablation_simplify");
    group.bench_function("suite_on_raw_bodies", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &raw {
                n += suite.check_program(black_box(p)).len();
            }
            black_box(n)
        })
    });
    group.bench_function("suite_on_simplified_bodies", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &simplified {
                n += suite.check_program(black_box(p)).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_interproc_mode,
    bench_race_detection_cost,
    bench_parallel_cache,
    bench_simplify_preconditioning
);
criterion_main!(benches);
