//! Guards the cost of rendering the Prometheus text exposition: the
//! scrape handler runs on the serve event loop's thread, so encoding a
//! fully populated registry must stay well under a millisecond or every
//! scrape becomes a latency blip for in-flight requests.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Populates the global registry the way a long-serving process would
/// look: a dozen histograms with a thousand samples each, plus a few
/// dozen counters.
fn populate_registry() {
    rstudy_telemetry::enable();
    for h in 0..12 {
        let name = format!("bench.scrape.hist{h}");
        for i in 0u64..1000 {
            // Spread samples across many power-of-two buckets.
            rstudy_telemetry::record(&name, (i % 24) * 97 + (1 << (i % 24)));
        }
    }
    for c in 0..24 {
        rstudy_telemetry::counter(&format!("bench.scrape.counter{c}"), c + 1);
    }
}

fn bench_scrape_encoding(c: &mut Criterion) {
    populate_registry();

    // One-shot budget check printed alongside the criterion numbers: a
    // full-registry encode must finish in under a millisecond.
    let start = Instant::now();
    let body = rstudy_telemetry::snapshot().to_prometheus("rstudy_");
    let elapsed = start.elapsed();
    println!(
        "\n== scrape: full-registry exposition is {} bytes in {:?} ==",
        body.len(),
        elapsed
    );
    assert!(
        elapsed.as_micros() < 1000,
        "encoding the exposition took {elapsed:?}, over the 1 ms budget"
    );

    let mut group = c.benchmark_group("scrape");
    group.bench_function("snapshot_to_prometheus", |b| {
        b.iter(|| {
            let snap = rstudy_telemetry::snapshot();
            black_box(snap.to_prometheus("rstudy_"))
        })
    });
    group.bench_function("snapshot_only", |b| {
        b.iter(|| black_box(rstudy_telemetry::snapshot()))
    });
    group.finish();
}

criterion_group!(benches, bench_scrape_encoding);
criterion_main!(benches);
