//! SUITE-JOBS — detector-suite scaling over worker counts, the bench-side
//! twin of `rstudy loadgen --suite-out` (BENCH_suite.json): full-corpus
//! suite wall time at `jobs = 1, 2, all-cores`, plus the fixpoint
//! iteration counts the analyses burned, harvested from the telemetry
//! `*.iterations` histograms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rstudy_core::suite::DetectorSuite;
use rstudy_corpus::all_entries;

fn print_fixpoint_once() {
    rstudy_telemetry::enable();
    let before = rstudy_telemetry::snapshot();
    let suite = DetectorSuite::new().with_jobs(1);
    for e in all_entries() {
        let _ = suite.check_program(&e.program());
    }
    let after = rstudy_telemetry::snapshot();

    println!("\n== suite fixpoint iterations (full corpus, jobs=1) ==");
    for (name, h) in &after.histograms {
        if !name.ends_with(".iterations") {
            continue;
        }
        let (prev_count, prev_sum) = before
            .histograms
            .get(name)
            .map_or((0, 0), |p| (p.count, p.sum));
        let count = h.count.saturating_sub(prev_count);
        let sum = h.sum.saturating_sub(prev_sum);
        if count > 0 {
            println!("{name}: {count} solves, {sum} iterations");
        }
    }
}

fn bench_suite_jobs(c: &mut Criterion) {
    print_fixpoint_once();

    let programs: Vec<_> = all_entries().iter().map(|e| e.program()).collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut jobs_list = vec![1, 2, cores];
    jobs_list.dedup();

    let mut group = c.benchmark_group("suite_jobs");
    for jobs in jobs_list {
        let suite = DetectorSuite::new().with_jobs(jobs);
        group.bench_function(format!("full_corpus_jobs{jobs}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for p in &programs {
                    total += suite.check_program(black_box(p)).len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite_jobs);
criterion_main!(benches);
