//! Shared workload generators for the benchmark harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic byte buffer of length `n`.
pub fn bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Deterministic `u64` buffer of length `n`.
pub fn words(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Deterministic in-bounds indices into a buffer of length `len`.
pub fn indices(count: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0..len)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(bytes(64, 1), bytes(64, 1));
        assert_ne!(bytes(64, 1), bytes(64, 2));
        assert_eq!(words(8, 3), words(8, 3));
    }

    #[test]
    fn indices_stay_in_bounds() {
        for i in indices(1000, 37, 5) {
            assert!(i < 37);
        }
    }
}
