//! Quickstart: write a tiny MIR program two ways (builder API and textual
//! form), run the static detector suite, and execute it dynamically.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rstudy_core::suite::DetectorSuite;
use rstudy_interp::Interpreter;
use rstudy_mir::build::BodyBuilder;
use rstudy_mir::parse::parse_program;
use rstudy_mir::{Mutability, Operand, Place, Program, Rvalue, Ty};

fn main() {
    // --- 1. Build a use-after-free with the builder API -------------------
    let mut b = BodyBuilder::new("main", 0, Ty::Int);
    let x = b.local("x", Ty::Int);
    let p = b.local("p", Ty::mut_ptr(Ty::Int));
    b.storage_live(x);
    b.assign(x, Rvalue::Use(Operand::int(42)));
    b.storage_live(p);
    b.assign(p, Rvalue::AddrOf(Mutability::Mut, x.into()));
    b.storage_dead(x); // x's lifetime ends here...
    b.in_unsafe(|b| {
        // ...but p is dereferenced after it (the paper's Fig. 7 shape).
        b.assign(
            Place::RETURN,
            Rvalue::Use(Operand::copy(Place::from_local(p).deref())),
        )
    });
    b.ret();
    let program = Program::from_bodies([b.finish()]);

    println!("== the program ==\n{program}");

    // --- 2. Static detection ----------------------------------------------
    let report = DetectorSuite::new().check_program(&program);
    println!("== static findings ==");
    for d in report.diagnostics() {
        println!("  {d}");
    }

    // --- 3. Dynamic execution ------------------------------------------------
    let outcome = Interpreter::new(&program).run();
    println!("\n== dynamic outcome ==");
    match &outcome.fault {
        Some(f) => println!("  fault: {f}"),
        None => println!("  returned {:?}", outcome.return_value),
    }

    // --- 4. The same program as text, via the parser ------------------------
    let fixed = parse_program(
        r#"
fn main() -> int {
    let _1 as x: int;
    let _2 as p: *mut int;

    bb0: {
        StorageLive(_1);
        _1 = const 42;
        StorageLive(_2);
        _2 = &raw mut _1;
        unsafe _0 = (*_2);
        StorageDead(_1);
        return;
    }
}
"#,
    )
    .expect("parse");
    let report = DetectorSuite::new().check_program(&fixed);
    let outcome = Interpreter::new(&fixed).run();
    println!("\n== fixed version ==");
    println!(
        "  static findings: {}; dynamic: {:?}",
        report.len(),
        outcome.return_value
    );
}
