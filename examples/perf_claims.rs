//! Long-window measurement of the §4.1 performance claims (run with
//! `--release`; the criterion benches in `rstudy-bench` measure the same
//! workloads with statistical sampling, this example uses large fixed
//! iteration counts, which is steadier on noisy machines):
//!
//! * unsafe `ptr::copy_nonoverlapping` vs `slice::copy_from_slice`
//!   (paper: "23% faster in some cases"),
//! * `slice::get_unchecked` vs checked indexing (paper: 4–5×; modern
//!   rustc + hardware shrink this to ~2× — the direction holds),
//! * pointer-offset traversal vs checked indexing (same claim).

use std::hint::black_box;
use std::time::Instant;

const HOT_ITERS: usize = 100_000;
const REPS: usize = 300;

#[inline(always)]
fn next_index(i: usize) -> usize {
    i.wrapping_mul(5).wrapping_add(1) & 255
}

#[inline(never)]
fn hot_checked(v: &[u64], n: usize) -> u64 {
    let mut acc = 0u64;
    let mut i = 0usize;
    for _ in 0..n {
        acc = acc.wrapping_add(v[i]);
        i = next_index(i);
    }
    acc
}

#[inline(never)]
fn hot_unchecked(v: &[u64], n: usize) -> u64 {
    let mut acc = 0u64;
    let mut i = 0usize;
    for _ in 0..n {
        acc = acc.wrapping_add(unsafe { *v.get_unchecked(i) });
        i = next_index(i);
    }
    acc
}

#[inline(never)]
fn hot_ptr_offset(v: &[u64], n: usize) -> u64 {
    let base = v.as_ptr();
    let mut acc = 0u64;
    let mut i = 0usize;
    for _ in 0..n {
        acc = acc.wrapping_add(unsafe { *base.add(i) });
        i = next_index(i);
    }
    acc
}

fn time_ms<F: FnMut() -> u64>(mut f: F) -> f64 {
    for _ in 0..10 {
        black_box(f());
    }
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..REPS {
        acc = acc.wrapping_add(f());
    }
    black_box(acc);
    start.elapsed().as_secs_f64() * 1000.0
}

fn median_of_5<F: FnMut() -> f64>(mut f: F) -> f64 {
    let mut xs: Vec<f64> = (0..5).map(|_| f()).collect();
    xs.sort_by(f64::total_cmp);
    xs[2]
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("note: run with --release; debug-build ratios are meaningless");
    }

    println!("== PERF-MEMCPY: copy_from_slice vs ptr::copy_nonoverlapping ==");
    for size in [16usize, 1024, 65536] {
        let src: Vec<u8> = (0..size).map(|x| x as u8).collect();
        let mut dst = vec![0u8; size];
        let safe = median_of_5(|| {
            time_ms(|| {
                dst.copy_from_slice(black_box(&src));
                dst[0] as u64
            })
        });
        let unsafe_ = median_of_5(|| {
            time_ms(|| {
                unsafe {
                    std::ptr::copy_nonoverlapping(black_box(src.as_ptr()), dst.as_mut_ptr(), size)
                };
                dst[0] as u64
            })
        });
        println!(
            "  {size:>6} B: safe {safe:>8.3} ms  unsafe {unsafe_:>8.3} ms  ratio {:.2}x",
            safe / unsafe_
        );
    }

    let data: Vec<u64> = (0..256u64).collect();
    let n = black_box(HOT_ITERS);

    println!("\n== PERF-GET: checked indexing vs get_unchecked ==");
    let safe = median_of_5(|| time_ms(|| hot_checked(black_box(&data), n)));
    let unchecked = median_of_5(|| time_ms(|| hot_unchecked(black_box(&data), n)));
    println!(
        "  checked {safe:>8.3} ms  get_unchecked {unchecked:>8.3} ms  ratio {:.2}x (paper: 4-5x on 2019 rustc)",
        safe / unchecked
    );

    println!("\n== PERF-PTR: checked indexing vs pointer-offset traversal ==");
    let ptr = median_of_5(|| time_ms(|| hot_ptr_offset(black_box(&data), n)));
    println!(
        "  checked {safe:>8.3} ms  ptr_offset {ptr:>8.3} ms  ratio {:.2}x (paper: 4-5x on 2019 rustc)",
        safe / ptr
    );
}
