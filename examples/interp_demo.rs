//! Drive the dynamic baseline: execute concurrency-bug corpus programs
//! under different schedules and watch the deadlock and race detectors
//! fire — or miss, when the schedule doesn't trigger the bug (the paper's
//! argument for static detection).
//!
//! ```sh
//! cargo run --example interp_demo
//! ```

use rstudy_corpus::blocking::{DOUBLE_LOCK_SIMPLE, LOCK_ORDER_THREADS};
use rstudy_corpus::nonblocking::{ATOMIC_CHECK_THEN_ACT, RACE_RAW_POINTER};
use rstudy_interp::{Interpreter, InterpreterConfig, SchedulePolicy};

fn run(name: &str, source: &str, policy: SchedulePolicy) {
    let program = rstudy_mir::parse::parse_program(source).expect("corpus parses");
    let config = InterpreterConfig {
        max_steps: 200_000,
        policy,
        detect_races: true,
        trace_tail: 0,
    };
    let outcome = Interpreter::new(&program).with_config(config).run();
    let verdict = match (&outcome.fault, outcome.races.len()) {
        (Some(f), _) => format!("fault: {f}"),
        (None, 0) => format!("clean, returned {:?}", outcome.return_int()),
        (None, n) => format!("{n} data race(s), returned {:?}", outcome.return_int()),
    };
    println!("  [{policy:?}] {name}: {verdict} ({} steps)", outcome.steps);
}

fn main() {
    println!("== double lock (self-deadlock is schedule-independent) ==");
    run(
        DOUBLE_LOCK_SIMPLE.name,
        DOUBLE_LOCK_SIMPLE.source,
        SchedulePolicy::RoundRobin,
    );
    for seed in [1, 2, 3] {
        run(
            DOUBLE_LOCK_SIMPLE.name,
            DOUBLE_LOCK_SIMPLE.source,
            SchedulePolicy::Random(seed),
        );
    }

    println!("\n== ABBA lock-order inversion (schedule-dependent!) ==");
    run(
        LOCK_ORDER_THREADS.name,
        LOCK_ORDER_THREADS.source,
        SchedulePolicy::RoundRobin,
    );
    for seed in [1, 7, 13, 99] {
        run(
            LOCK_ORDER_THREADS.name,
            LOCK_ORDER_THREADS.source,
            SchedulePolicy::Random(seed),
        );
    }
    println!("  (some seeds complete cleanly — a dynamic tool only sees the bug");
    println!("   when the schedule cooperates; §7's case for static detectors)");

    println!("\n== unsynchronized counter (lockset detector) ==");
    run(
        RACE_RAW_POINTER.name,
        RACE_RAW_POINTER.source,
        SchedulePolicy::RoundRobin,
    );

    println!("\n== Fig. 9 atomicity violation (wrong result, no fault) ==");
    for seed in [1, 5, 9] {
        run(
            ATOMIC_CHECK_THEN_ACT.name,
            ATOMIC_CHECK_THEN_ACT.source,
            SchedulePolicy::Random(seed),
        );
    }
    println!("  (a result of 2 means both threads produced a seal — the lost update)");
}
