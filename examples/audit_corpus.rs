//! Audit the whole corpus: run every static detector and the dynamic
//! interpreter over every entry, print the coverage matrix, and classify
//! the static findings into the paper's Table 2 taxonomy.
//!
//! ```sh
//! cargo run --example audit_corpus
//! ```

use rstudy_core::classify::MemoryBugTable;
use rstudy_core::suite::DetectorSuite;
use rstudy_corpus::{all_entries, DynamicExpectation};
use rstudy_interp::{Interpreter, InterpreterConfig, SchedulePolicy};

fn main() {
    let suite = DetectorSuite::new();
    let config = InterpreterConfig {
        max_steps: 200_000,
        policy: SchedulePolicy::RoundRobin,
        detect_races: true,
        trace_tail: 0,
    };

    println!(
        "{:<28} {:<28} {:<16} {:<10}",
        "entry", "static findings", "dynamic", "ground truth"
    );
    println!("{}", "-".repeat(86));

    let mut all_diags = Vec::new();
    let mut static_hits = 0;
    let mut dynamic_hits = 0;
    let mut buggy_entries = 0;

    for entry in all_entries() {
        let program = entry.program();
        let report = suite.check_program(&program);
        let outcome = Interpreter::new(&program).with_config(config).run();

        let static_str = if report.is_clean() {
            "-".to_owned()
        } else {
            let mut codes: Vec<&str> = report
                .diagnostics()
                .iter()
                .map(|d| d.bug_class.code())
                .collect();
            codes.sort_unstable();
            codes.dedup();
            codes.join(",")
        };
        let dynamic_str = match (&outcome.fault, outcome.races.is_empty()) {
            (Some(f), _) => format!("{f}"),
            (None, false) => "data race".to_owned(),
            (None, true) => format!("ok ({:?})", outcome.return_int()),
        };
        let truth = if entry.static_bugs.is_empty() && entry.dynamic == DynamicExpectation::Clean {
            "clean"
        } else {
            "buggy"
        };
        if truth == "buggy" {
            buggy_entries += 1;
            static_hits += usize::from(!report.is_clean());
            dynamic_hits += usize::from(outcome.fault.is_some() || !outcome.races.is_empty());
        }
        println!(
            "{:<28} {:<28} {:<16} {:<10}",
            entry.name,
            static_str,
            dynamic_str.chars().take(16).collect::<String>(),
            truth
        );
        all_diags.extend(report.diagnostics().to_vec());
    }

    println!(
        "\ncoverage over {buggy_entries} buggy entries: static caught {static_hits}, \
         dynamic caught {dynamic_hits} (the complement is each side's §7 blind spot)"
    );

    println!("\n== Table 2-style classification of the static findings ==");
    let table = MemoryBugTable::from_diagnostics(&all_diags);
    print!("{}", table.render());
}
