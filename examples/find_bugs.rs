//! Reproduce the §7 detector evaluation: run the use-after-free and
//! double-lock detectors over the seeded evaluation corpus and print the
//! found/false-positive counts the paper reports.
//!
//! ```sh
//! cargo run --example find_bugs
//! ```

use rstudy_core::detectors::{Detector, DoubleLock, UseAfterFree};
use rstudy_core::{BugClass, DetectorConfig};
use rstudy_corpus::detector_eval::{DL_CLEAN, DL_TARGETS, UAF_FALSE_POSITIVES, UAF_TARGETS};

fn main() {
    let precise = DetectorConfig::new();
    let naive = DetectorConfig::naive();

    println!("== §7.1 use-after-free detector ==");
    let mut found = 0;
    for entry in UAF_TARGETS {
        let diags = UseAfterFree.check_program(&entry.program(), &precise);
        let hit = diags.iter().any(|d| d.bug_class == BugClass::UseAfterFree);
        found += usize::from(hit);
        println!(
            "  {:<22} {}",
            entry.name,
            if hit { "FOUND" } else { "missed" }
        );
        for d in diags.iter().take(1) {
            println!("      {d}");
        }
    }
    let mut fp_naive = 0;
    let mut fp_precise = 0;
    for entry in UAF_FALSE_POSITIVES {
        let n = UseAfterFree.check_program(&entry.program(), &naive);
        let p = UseAfterFree.check_program(&entry.program(), &precise);
        fp_naive += usize::from(!n.is_empty());
        fp_precise += usize::from(!p.is_empty());
        println!(
            "  {:<22} naive: {:<8} precise: {}",
            entry.name,
            if n.is_empty() { "clean" } else { "REPORTED" },
            if p.is_empty() { "clean" } else { "REPORTED" }
        );
    }
    println!(
        "  => {found} bugs found; {fp_naive} false positives in naive mode, \
         {fp_precise} in precise mode (paper: 4 found, 3 FPs unoptimized)"
    );

    println!("\n== §7.2 double-lock detector ==");
    let mut found_dl = 0;
    for entry in DL_TARGETS {
        let diags = DoubleLock.check_program(&entry.program(), &precise);
        let hit = diags
            .iter()
            .any(|d| matches!(d.bug_class, BugClass::DoubleLock | BugClass::RecursiveOnce));
        found_dl += usize::from(hit);
        println!(
            "  {:<22} {}",
            entry.name,
            if hit { "FOUND" } else { "missed" }
        );
    }
    let mut fp_dl = 0;
    for entry in DL_CLEAN {
        let diags = DoubleLock.check_program(&entry.program(), &precise);
        fp_dl += usize::from(!diags.is_empty());
        println!(
            "  {:<22} {}",
            entry.name,
            if diags.is_empty() {
                "clean"
            } else {
                "REPORTED"
            }
        );
    }
    println!("  => {found_dl} bugs found; {fp_dl} false positives (paper: 6 found, 0 FPs)");
}
