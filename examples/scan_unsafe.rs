//! Run the §4 unsafe-usage scanner — over the bundled miniature corpus by
//! default, or over any `.rs` files/directories passed as arguments.
//!
//! ```sh
//! cargo run --example scan_unsafe              # bundled corpus
//! cargo run --example scan_unsafe -- src/      # scan your own tree
//! ```

use std::path::Path;

use rstudy_scan::stats::ScanStats;
use rstudy_scan::{samples, scan_source};

fn scan_path(path: &Path, stats: &mut ScanStats, files: &mut usize) {
    if path.is_dir() {
        let Ok(entries) = std::fs::read_dir(path) else {
            return;
        };
        for entry in entries.flatten() {
            scan_path(&entry.path(), stats, files);
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        if let Ok(src) = std::fs::read_to_string(path) {
            let usages = scan_source(&src);
            if !usages.is_empty() {
                println!("{}:", path.display());
                for u in &usages {
                    println!(
                        "  line {:>4}: unsafe {:?}{} — purpose {:?}",
                        u.line,
                        u.kind,
                        u.name
                            .as_deref()
                            .map(|n| format!(" `{n}`"))
                            .unwrap_or_default(),
                        u.purpose
                    );
                }
            }
            stats.merge(&ScanStats::from_usages(&usages));
            *files += 1;
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stats = ScanStats::default();
    let mut files = 0usize;

    if args.is_empty() {
        println!("scanning the bundled miniature corpus (no path arguments)\n");
        for s in samples::ALL {
            let usages = scan_source(s.source);
            println!("sample `{}`: {} usage(s)", s.name, usages.len());
            for u in &usages {
                println!(
                    "  line {:>3}: unsafe {:?}{} — purpose {:?}, ops {:?}",
                    u.line,
                    u.kind,
                    u.name
                        .as_deref()
                        .map(|n| format!(" `{n}`"))
                        .unwrap_or_default(),
                    u.purpose,
                    u.ops
                );
            }
            stats.merge(&ScanStats::from_usages(&usages));
            files += 1;
        }
    } else {
        for a in &args {
            scan_path(Path::new(a), &mut stats, &mut files);
        }
    }

    println!("\n== §4-style summary over {files} file(s) ==");
    print!("{}", stats.render());
    println!(
        "memory-operation share of unsafe ops: {:.0}% (paper: 66% of sampled usages)",
        stats.memory_op_percent()
    );
}
