//! Regenerate every table and figure of the study from the encoded
//! datasets: Tables 1–4, Figures 1–2, and the §4 unsafe-usage statistics.
//!
//! ```sh
//! cargo run --example study_report
//! cargo run --example study_report -- --json   # machine-readable dataset
//! ```

use rstudy_dataset::export::DatasetBundle;
use rstudy_dataset::figures::{render_figure1, render_figure2};
use rstudy_dataset::tables::{render_table1, render_table2, render_table3, render_table4};
use rstudy_dataset::unsafe_usages;

fn main() {
    if std::env::args().any(|a| a == "--json") {
        let bundle = DatasetBundle::build();
        println!("{}", bundle.to_json().expect("dataset serializes"));
        return;
    }

    println!("== Table 1: studied applications and libraries ==");
    print!("{}", render_table1());

    println!("\n== Table 2: memory-bug categories ==");
    print!("{}", render_table2());

    println!("\n== Table 3: synchronization in blocking bugs ==");
    print!("{}", render_table3());

    println!("\n== Table 4: data sharing in non-blocking bugs ==");
    print!("{}", render_table4());

    println!("\n== Figure 1: Rust release history ==");
    print!("{}", render_figure1());

    println!("\n== Figure 2: fix dates of the 170 studied bugs ==");
    print!("{}", render_figure2());

    println!("\n== §4: unsafe-usage statistics ==");
    print!("{}", unsafe_usages::render());
}
