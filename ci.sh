#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite — what a hosted pipeline
# would run. Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== no build artifacts tracked =="
# target/ is generated; anything from it in the index bloats every clone.
if git ls-files | grep -q '^target/'; then
    echo "FAIL: build artifacts under target/ are tracked in git" >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo build --release =="
cargo build --release

echo "== --jobs equivalence smoke check =="
# The parallel suite must produce byte-identical reports at any job count.
BIN=target/release/rust-safety-study
SEQ=$("$BIN" check examples/mir/use_after_free.mir --jobs 1 || true)
PAR=$("$BIN" check examples/mir/use_after_free.mir --jobs 8 || true)
if [ "$SEQ" != "$PAR" ]; then
    echo "FAIL: check output differs between --jobs 1 and --jobs 8" >&2
    exit 1
fi

echo "== serve smoke check =="
# Boot the analysis service on an ephemeral port, fire the three
# serve-smoke fixtures at it, assert a cache hit on the repeat request,
# and verify it drains and exits cleanly on a `shutdown` request.
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$SERVE_TMP"' EXIT
"$BIN" serve --port 0 --cache-dir "$SERVE_TMP/cache" --workers 2 \
    > "$SERVE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 100); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/serve.log")
    [ -n "$PORT" ] && break
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "FAIL: serve did not report its listening port" >&2
    cat "$SERVE_TMP/serve.log" >&2
    exit 1
fi
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
smoke() { # smoke <id> <payload> <expected-substring>...
    local id=$1 payload=$2 reply
    shift 2
    printf '%s\n' "$payload" >&3
    IFS= read -r -t 20 reply <&3 || {
        echo "FAIL: no reply for request $id" >&2
        exit 1
    }
    local want
    for want in "$@"; do
        case "$reply" in
        *"$want"*) ;;
        *)
            echo "FAIL: request $id: expected $want in reply: $reply" >&2
            exit 1
            ;;
        esac
    done
}
smoke clean '{"id":"clean","path":"examples/mir/serve_smoke_clean.mir"}' \
    '"status":"ok"' '"cached":false' '"findings":0'
smoke buggy '{"id":"buggy","path":"examples/mir/serve_smoke_buggy.mir"}' \
    '"status":"ok"' '"findings":1' 'use-after-free'
smoke malformed '{"id":"malformed","path":"examples/mir/serve_smoke_malformed.mir"}' \
    '"status":"error"' 'parse error'
smoke repeat '{"id":"repeat","path":"examples/mir/serve_smoke_clean.mir"}' \
    '"status":"ok"' '"cached":true'
smoke stats '{"id":"s","cmd":"stats"}' '"cache_hits":1' '"uptime_ms"' '"inflight":0'
smoke timing '{"id":"t","path":"examples/mir/serve_smoke_clean.mir"}' \
    '"queue_ns"' '"analysis_ns"' '"trace_id"'
smoke metrics '{"id":"m","cmd":"metrics"}' '"status":"metrics"' '"p50"' '"hit_ratio"'

echo "== loadgen benchmark baselines =="
# Replay 50 corpus requests against the already-running server and
# regenerate the committed BENCH_*.json baselines. loadgen exits non-zero
# if any request failed, so the `set -e` above is the assertion.
"$BIN" loadgen --requests 50 --connections 4 --addr "127.0.0.1:$PORT" \
    --out BENCH_serve.json --suite-out BENCH_suite.json
grep -q '"schema": "rstudy-bench-serve/v1"' BENCH_serve.json
grep -q '"errors": 0' BENCH_serve.json
grep -q '"schema": "rstudy-bench-suite/v1"' BENCH_suite.json
# Latency sanity ceiling: the event-driven transport's closed-loop p50 is
# sub-millisecond on an idle machine; 20 ms of headroom absorbs CI noise
# while still catching a regression to the ~100 ms poll-era baseline.
P50=$(sed -n '/"latency_ns"/,/}/p' BENCH_serve.json | sed -n 's/.*"p50": \([0-9]*\).*/\1/p')
if [ -z "$P50" ] || [ "$P50" -ge 20000000 ]; then
    echo "FAIL: serve latency p50 is ${P50:-unparseable} ns (ceiling 20 ms)" >&2
    exit 1
fi

smoke shutdown '{"id":"bye","cmd":"shutdown"}' '"status":"shutdown"'
exec 3<&- 3>&-
if ! wait "$SERVE_PID"; then
    echo "FAIL: serve exited non-zero after graceful shutdown" >&2
    exit 1
fi

echo "== observability smoke check =="
# Boot a fresh server with the scrape endpoint and access log on, drive it
# with loadgen's embedded cross-check, then independently verify the
# Prometheus counter and the access-log line count against the request
# count.
OBS_REQUESTS=25
"$BIN" serve --port 0 --workers 2 --metrics-port 0 \
    --access-log "$SERVE_TMP/access.ndjson" \
    > "$SERVE_TMP/serve-obs.log" 2>&1 &
OBS_PID=$!
OBS_PORT="" MET_PORT=""
for _ in $(seq 100); do
    OBS_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/serve-obs.log")
    MET_PORT=$(sed -n 's/.*metrics on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/serve-obs.log")
    [ -n "$OBS_PORT" ] && [ -n "$MET_PORT" ] && break
    sleep 0.1
done
if [ -z "$OBS_PORT" ] || [ -z "$MET_PORT" ]; then
    echo "FAIL: serve did not report both listening and metrics ports" >&2
    cat "$SERVE_TMP/serve-obs.log" >&2
    exit 1
fi
"$BIN" loadgen --requests "$OBS_REQUESTS" --connections 2 \
    --addr "127.0.0.1:$OBS_PORT" --scrape-addr "127.0.0.1:$MET_PORT" \
    --out "$SERVE_TMP/BENCH_obs.json"
grep -q '"matches_requests": true' "$SERVE_TMP/BENCH_obs.json"
exec 5<>"/dev/tcp/127.0.0.1/$MET_PORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&5
SCRAPE=$(cat <&5)
exec 5<&- 5>&-
TOTAL=$(printf '%s\n' "$SCRAPE" | sed -n 's/^rstudy_requests_total \([0-9][0-9]*\).*/\1/p')
if [ -z "$TOTAL" ] || [ "$TOTAL" -ne "$OBS_REQUESTS" ]; then
    echo "FAIL: scraped rstudy_requests_total is ${TOTAL:-missing}, want $OBS_REQUESTS" >&2
    exit 1
fi
exec 5<>"/dev/tcp/127.0.0.1/$OBS_PORT"
printf '{"id":"bye","cmd":"shutdown"}\n' >&5
IFS= read -r -t 20 _ <&5 || true
exec 5<&- 5>&-
if ! wait "$OBS_PID"; then
    echo "FAIL: observability serve exited non-zero after shutdown" >&2
    exit 1
fi
LOG_LINES=$(wc -l < "$SERVE_TMP/access.ndjson")
if [ "$LOG_LINES" -ne "$OBS_REQUESTS" ]; then
    echo "FAIL: access log has $LOG_LINES line(s), want $OBS_REQUESTS" >&2
    exit 1
fi

echo "== poll-vs-epoll equivalence smoke =="
# Both transports must answer the serve-smoke fixtures byte-identically
# (the measured `timing` object aside). Boot a fresh server per transport
# so trace ids start from 1 in both.
transport_answers() { # transport_answers <poll|epoll> <outfile>
    local transport=$1 outfile=$2 log port reply
    log="$SERVE_TMP/serve-$transport.log"
    "$BIN" serve --port 0 --workers 2 --transport "$transport" \
        > "$log" 2>&1 &
    local pid=$!
    port=""
    for _ in $(seq 100); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "FAIL: serve --transport $transport did not report its port" >&2
        cat "$log" >&2
        exit 1
    fi
    exec 4<>"/dev/tcp/127.0.0.1/$port"
    : > "$outfile"
    local fixture
    for fixture in serve_smoke_clean serve_smoke_buggy serve_smoke_malformed; do
        printf '{"id":"%s","path":"examples/mir/%s.mir"}\n' "$fixture" "$fixture" >&4
        IFS= read -r -t 20 reply <&4 || {
            echo "FAIL: no $transport reply for $fixture" >&2
            exit 1
        }
        # Strip the measured timing object before comparing.
        printf '%s\n' "$reply" | sed 's/"timing":{[^}]*},//' >> "$outfile"
    done
    printf '{"id":"bye","cmd":"shutdown"}\n' >&4
    IFS= read -r -t 20 reply <&4 || true
    exec 4<&- 4>&-
    if ! wait "$pid"; then
        echo "FAIL: serve --transport $transport exited non-zero" >&2
        exit 1
    fi
}
transport_answers epoll "$SERVE_TMP/answers-epoll.txt"
transport_answers poll "$SERVE_TMP/answers-poll.txt"
if ! cmp -s "$SERVE_TMP/answers-epoll.txt" "$SERVE_TMP/answers-poll.txt"; then
    echo "FAIL: poll and epoll transports answered differently:" >&2
    diff "$SERVE_TMP/answers-epoll.txt" "$SERVE_TMP/answers-poll.txt" >&2 || true
    exit 1
fi

echo "== ingest smoke check =="
# Self-host: ingest the workspace's own crates/ tree, assert the corpus
# floors (>=100 files scanned, >=50 function bodies lowered), then
# round-trip ingested bodies through `check --json` and one served
# manifest request.
INGEST_OUT="$SERVE_TMP/ingest"
"$BIN" ingest crates/ --out "$INGEST_OUT" > "$SERVE_TMP/ingest.log" 2>&1
SCANNED=$(sed -n 's/.*scanned \([0-9][0-9]*\) file(s).*/\1/p' "$SERVE_TMP/ingest.log")
LOWERED=$(sed -n 's/.*lowered \([0-9][0-9]*\) fn(s).*/\1/p' "$SERVE_TMP/ingest.log")
if [ -z "$SCANNED" ] || [ "$SCANNED" -lt 100 ]; then
    echo "FAIL: self-host ingest scanned ${SCANNED:-0} file(s), want >= 100" >&2
    cat "$SERVE_TMP/ingest.log" >&2
    exit 1
fi
if [ -z "$LOWERED" ] || [ "$LOWERED" -lt 50 ]; then
    echo "FAIL: self-host ingest lowered ${LOWERED:-0} fn(s), want >= 50" >&2
    cat "$SERVE_TMP/ingest.log" >&2
    exit 1
fi
grep -q 'memory-ops' "$SERVE_TMP/ingest.log"
test -s "$INGEST_OUT/stats-diff.json"
# The suite must analyze every lowered program without a parse/validate
# error (exit 2); findings alone exit 1, which is acceptable here.
CHECK_OUT=$("$BIN" check --manifest "$INGEST_OUT/manifest.json" --json) || {
    status=$?
    if [ "$status" -ne 1 ]; then
        echo "FAIL: check --manifest exited $status" >&2
        exit 1
    fi
}
case "$CHECK_OUT" in
*'"programs":'*) ;;
*)
    echo "FAIL: check --manifest produced no program count: $CHECK_OUT" >&2
    exit 1
    ;;
esac
ENTRY=$(printf '%s\n' "$CHECK_OUT" | sed -n 's/.*"reports":\[{"path":"\([^"]*\)".*/\1/p')
if [ -z "$ENTRY" ]; then
    echo "FAIL: no lowered entry found in check --manifest output" >&2
    exit 1
fi
REPLY=$(printf '{"id":"ing","manifest":"%s","entry":"%s"}\n' \
    "$INGEST_OUT/manifest.json" "$ENTRY" | "$BIN" serve --stdin)
case "$REPLY" in
*'"status":"ok"'*) ;;
*)
    echo "FAIL: serve did not answer ok for ingested entry $ENTRY: $REPLY" >&2
    exit 1
    ;;
esac

echo "CI green."
