#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite — what a hosted pipeline
# would run. Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "CI green."
