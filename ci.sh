#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite — what a hosted pipeline
# would run. Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo build --release =="
cargo build --release

echo "== --jobs equivalence smoke check =="
# The parallel suite must produce byte-identical reports at any job count.
BIN=target/release/rust-safety-study
SEQ=$("$BIN" check examples/mir/use_after_free.mir --jobs 1 || true)
PAR=$("$BIN" check examples/mir/use_after_free.mir --jobs 8 || true)
if [ "$SEQ" != "$PAR" ]; then
    echo "FAIL: check output differs between --jobs 1 and --jobs 8" >&2
    exit 1
fi

echo "CI green."
