//! Umbrella crate re-exporting the rust-safety-study workspace.
//!
//! See the individual crates for documentation:
//! [`rstudy_mir`], [`rstudy_analysis`], [`rstudy_core`], [`rstudy_interp`],
//! [`rstudy_scan`], [`rstudy_dataset`], [`rstudy_corpus`],
//! [`rstudy_ingest`], [`rstudy_telemetry`].

pub use rstudy_analysis as analysis;
pub use rstudy_core as core;
pub use rstudy_corpus as corpus;
pub use rstudy_dataset as dataset;
pub use rstudy_ingest as ingest;
pub use rstudy_interp as interp;
pub use rstudy_mir as mir;
pub use rstudy_scan as scan;
pub use rstudy_serve as serve;
pub use rstudy_telemetry as telemetry;
