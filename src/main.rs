//! `rust-safety-study` — the command-line front end.
//!
//! ```text
//! rust-safety-study check <file.mir> [--naive] [--json]   run the static detectors
//! rust-safety-study check --manifest <path>        run the suite over an ingested corpus
//! rust-safety-study run <file.mir> [--seed N]      execute on the checked interpreter
//! rust-safety-study lint <file.mir>                IDE-style lints (implicit unlocks, …)
//! rust-safety-study scan <path>...                 unsafe-usage scanner over .rs files
//! rust-safety-study ingest <dir> [--out <dir>]     register a real-Rust tree as a corpus
//! rust-safety-study report [--json]                regenerate the study's tables/figures
//! rust-safety-study corpus [name]                  list corpus entries / print one
//! rust-safety-study serve [--port N] [--stdin]     long-running analysis service
//! ```

use std::path::Path;
use std::process::ExitCode;

use rust_safety_study::core::config::DetectorConfig;
use rust_safety_study::core::lints;
use rust_safety_study::core::suite::DetectorSuite;
use rust_safety_study::interp::{Interpreter, InterpreterConfig, SchedulePolicy};
use rust_safety_study::mir::parse::parse_program;
use rust_safety_study::mir::validate::validate_program;
use rust_safety_study::mir::Program;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Telemetry and threading flags are global: valid in any position, for
    // every command.
    let profile = take_flag(&mut args, "--profile");
    let metrics_json = match take_value(&mut args, "--metrics-json") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let jobs = match take_value(&mut args, "--jobs") {
        Ok(None) => 0,
        Ok(Some(s)) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs: expected a positive integer, got `{s}`\n{USAGE}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let trace_out = match take_value(&mut args, "--trace-out") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let wants_trace = args.iter().any(|a| a == "--trace");
    if profile || metrics_json.is_some() || wants_trace || trace_out.is_some() {
        rstudy_telemetry::enable();
    }
    if wants_trace || trace_out.is_some() {
        rstudy_telemetry::set_tracing(true);
    }
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let code = match cmd.as_str() {
        "check" => cmd_check(&mut args[1..].to_vec(), jobs),
        "ingest" => cmd_ingest(&mut args[1..].to_vec()),
        "serve" => cmd_serve(&mut args[1..].to_vec(), jobs),
        "loadgen" => cmd_loadgen(&mut args[1..].to_vec()),
        "run" => cmd_run(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "scan" => cmd_scan(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "corpus" => cmd_corpus(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    };
    if profile {
        print!("{}", rstudy_telemetry::render_profile());
    }
    if let Some(path) = metrics_json {
        if let Err(e) = std::fs::write(&path, rstudy_telemetry::to_json()) {
            eprintln!("--metrics-json {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, rstudy_telemetry::chrome_trace_json()) {
            eprintln!("--trace-out {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    code
}

/// Removes every occurrence of `name` from `args`; returns whether any was
/// present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// Removes `name <value>` or `name=<value>` from `args`, returning the
/// value. A flag present without a value is an error, not a silently
/// dropped request.
fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let prefix = format!("{name}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let arg = args.remove(i);
        let value = arg[prefix.len()..].to_owned();
        if value.is_empty() {
            return Err(format!("{name}: missing value"));
        }
        return Ok(Some(value));
    }
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    args.remove(i);
    if i < args.len() {
        Ok(Some(args.remove(i)))
    } else {
        Err(format!("{name}: missing value"))
    }
}

const USAGE: &str = "\
rust-safety-study — static & dynamic Rust-safety tooling (PLDI 2020 reproduction)

USAGE:
  rust-safety-study check <file.mir> [--naive] [--trace] [--json]
  rust-safety-study check --manifest <path> [--json]   suite over an ingested corpus
  rust-safety-study run <file.mir> [--seed N] [--max-steps N] [--trace]
  rust-safety-study lint <file.mir>              critical sections & hazards
  rust-safety-study scan <path>...               scan .rs files for unsafe usages
  rust-safety-study ingest <dir> [INGEST FLAGS]  walk/scan/lower a real-Rust tree
  rust-safety-study report [--json]              Tables 1-4, Figures 1-2, §4 stats
  rust-safety-study corpus [name]                list / print corpus programs
  rust-safety-study serve [SERVE FLAGS]          long-running analysis service (NDJSON)
  rust-safety-study loadgen [LOADGEN FLAGS]      replay corpus programs against a server

SERVE FLAGS:
  --port <N>            TCP port on 127.0.0.1 (default 0 = kernel-assigned; printed)
  --stdin               serve one request per stdin line instead of TCP
  --cache-dir <path>    persist the result cache on disk across restarts
  --timeout-ms <N>      per-request deadline; exceeding it answers `timeout`
  --workers <N>         analysis worker threads (default: all cores)
  --queue-depth <N>     bounded queue capacity; overflow answers `overloaded` (default 64)
  --transport <T>       connection handling: `epoll` (event-driven, Linux default)
                        or `poll` (portable 25 ms polling fallback)
  --metrics-port <N>    also serve `GET /metrics` (Prometheus text) and
                        `GET /healthz` on 127.0.0.1:<N> (0 = kernel-assigned)
  --access-log <path>   append one JSON line per completed request
  --access-log-sample <N>  log every Nth request only (default 1 = all)
  --slow-ms <N>         promote requests slower than N ms into the flight
                        recorder's incident buffer (`{\"cmd\":\"incidents\"}`)

INGEST FLAGS:
  --out <dir>           write manifest.json and stats-diff.json into <dir>
  --name <name>         corpus name (default: the root directory's name)
  --json                print the full manifest instead of the summary + diff

LOADGEN FLAGS:
  --requests <N>        total requests to send (default 100)
  --rate <R>            open-loop target rate in req/s (default 0 = unpaced)
  --connections <N>     concurrent client connections (default 4)
  --addr <host:port>    target server (default: boot one in-process)
  --mix <a,b,...>       corpus program names to cycle through
  --manifest <path>     replay lowered programs from an ingest manifest
                        (--mix then selects root-relative file paths in it)
  --transport <T>       transport for the in-process server: `epoll` or `poll`
  --out <path>          latency/throughput report (default BENCH_serve.json)
  --suite-out <path>    also run the offline suite benchmark (BENCH_suite.json)
  --scrape              scrape `/metrics` mid-run and embed the cross-check
                        in the report (in-process servers only, or with
                        --scrape-addr)
  --scrape-addr <host:port>  the external server's metrics endpoint
                        (implies --scrape)

GLOBAL FLAGS:
  --profile             print the telemetry span/counter tree after the command
  --metrics-json <path> write the full telemetry registry as JSON
  --jobs <N>            worker threads for `check` / per-request default for `serve`
                        (default: all cores; 1 = sequential; 0 is rejected)
  --trace               record (and print) per-step / per-detector trace events
  --trace-out <path>    write spans/events as Chrome trace-event JSON
                        (open in chrome://tracing or Perfetto)";

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
    validate_program(&program).map_err(|errs| format!("{path}: invalid program: {}", errs[0]))?;
    Ok(program)
}

fn cmd_check(args: &mut Vec<String>, jobs: usize) -> ExitCode {
    let config = if args.iter().any(|a| a == "--naive") {
        DetectorConfig::naive()
    } else {
        DetectorConfig::new()
    };
    let manifest = match take_value(args, "--manifest") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(mpath) = manifest {
        let json = args.iter().any(|a| a == "--json");
        return check_manifest(&mpath, config, jobs, json);
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("check: missing <file.mir>");
        return ExitCode::from(2);
    };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let report = DetectorSuite::new()
        .with_config(config)
        .with_jobs(jobs)
        .check_program(&program);
    if args.iter().any(|a| a == "--json") {
        // The one-line machine-readable form — the same bytes the analysis
        // service embeds under `"report"` for the same program.
        let json = serde_json::to_string(&report).expect("report serialization cannot fail");
        println!("{json}");
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    print_trace_events();
    if report.is_clean() {
        println!("{path}: no findings");
        return ExitCode::SUCCESS;
    }
    for d in report.diagnostics() {
        println!("{d}");
    }
    println!("{}: {} finding(s)", path, report.len());
    ExitCode::FAILURE
}

/// Serializable output of `check --manifest --json`.
#[derive(serde::Serialize)]
struct ManifestCheckOutput {
    manifest: String,
    programs: usize,
    findings: usize,
    reports: Vec<ManifestReportEntry>,
}

/// One `(file, report)` pair in [`ManifestCheckOutput`].
#[derive(serde::Serialize)]
struct ManifestReportEntry {
    path: String,
    report: rust_safety_study::core::suite::Report,
}

/// Runs the detector suite over every lowered program in an ingest
/// manifest (`check --manifest <path>`). Exit: 2 on a load/parse error,
/// failure when any program has findings, success otherwise.
fn check_manifest(mpath: &str, config: DetectorConfig, jobs: usize, json: bool) -> ExitCode {
    use rust_safety_study::ingest::Manifest;
    let m = match Manifest::load(Path::new(mpath)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("check: {e}");
            return ExitCode::from(2);
        }
    };
    let mut programs = Vec::new();
    for (path, unit) in m.lowered_units() {
        match parse_program(&unit.program) {
            Ok(p) => programs.push((path.to_owned(), p)),
            Err(e) => {
                eprintln!("check: {mpath}: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let suite = DetectorSuite::new().with_config(config).with_jobs(jobs);
    let reports = suite.check_programs(programs.iter().map(|(n, p)| (n.as_str(), p)));
    let findings: usize = reports.iter().map(|(_, r)| r.len()).sum();
    if json {
        let out = ManifestCheckOutput {
            manifest: m.name.clone(),
            programs: reports.len(),
            findings,
            reports: reports
                .into_iter()
                .map(|(path, report)| ManifestReportEntry { path, report })
                .collect(),
        };
        let json = serde_json::to_string(&out).expect("report serialization cannot fail");
        println!("{json}");
    } else {
        for (path, report) in &reports {
            for d in report.diagnostics() {
                println!("{path}: {d}");
            }
        }
        println!(
            "{mpath}: {} program(s), {findings} finding(s)",
            reports.len()
        );
    }
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses and runs the `ingest` subcommand: walk a directory of real Rust,
/// scan + lower it, register the corpus manifest, and print the scan-stats
/// diff against the paper's §4 distributions.
fn cmd_ingest(args: &mut Vec<String>) -> ExitCode {
    use rust_safety_study::dataset::compare::compare_scan;
    use rust_safety_study::ingest::{default_corpus_name, ingest};

    let parsed = (|| {
        let out = take_value(args, "--out")?.map(std::path::PathBuf::from);
        let name = take_value(args, "--name")?;
        let json = take_flag(args, "--json");
        let positionals: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        let root = match positionals.as_slice() {
            [one] => std::path::PathBuf::from(one.as_str()),
            [] => return Err("ingest: missing <dir>".to_owned()),
            [_, extra, ..] => return Err(format!("ingest: unexpected argument `{extra}`")),
        };
        Ok((root, out, name, json))
    })();
    let (root, out, name, json) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let name = name.unwrap_or_else(|| default_corpus_name(&root));
    let manifest = match ingest(&root, &name) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ingest: {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let diff = compare_scan(&manifest.stats);
    if json {
        print!("{}", manifest.to_json());
    } else {
        let s = &manifest.summary;
        println!(
            "{name}: scanned {} file(s) ({} skipped), {} unsafe usage(s), \
             lowered {} fn(s) ({} skipped)",
            s.files_scanned, s.files_skipped, s.unsafe_usages, s.fns_lowered, s.fns_skipped
        );
        print!("{}", diff.render());
    }
    if let Some(dir) = out {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("ingest: {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("manifest.json");
        if let Err(e) = manifest.save(&path) {
            eprintln!("ingest: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let diff_path = dir.join("stats-diff.json");
        let diff_json =
            serde_json::to_string_pretty(&diff).expect("diff serialization cannot fail");
        if let Err(e) = std::fs::write(&diff_path, diff_json + "\n") {
            eprintln!("ingest: {}: {e}", diff_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        eprintln!("wrote {}", diff_path.display());
    }
    ExitCode::SUCCESS
}

/// Parses and runs the `serve` subcommand. `default_jobs` is the global
/// `--jobs` value (0 = auto), applied to requests that omit `jobs`.
fn cmd_serve(args: &mut Vec<String>, default_jobs: usize) -> ExitCode {
    use rust_safety_study::serve::{
        install_sigint_handler, serve_stream, ServeConfig, Server, Transport,
    };

    fn positive(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, String> {
        match take_value(args, name)? {
            None => Ok(None),
            Some(s) => match s.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(format!("{name}: expected a positive integer, got `{s}`")),
            },
        }
    }

    let stdin_mode = take_flag(args, "--stdin");
    let parsed = (|| {
        let port = match take_value(args, "--port")? {
            None => 0u16,
            Some(s) => s
                .parse::<u16>()
                .map_err(|_| format!("--port: expected a port number, got `{s}`"))?,
        };
        let timeout_ms = positive(args, "--timeout-ms")?;
        let workers = positive(args, "--workers")?.unwrap_or(0) as usize;
        let queue_depth = positive(args, "--queue-depth")?.unwrap_or(64) as usize;
        let cache_dir = take_value(args, "--cache-dir")?.map(std::path::PathBuf::from);
        let transport = match take_value(args, "--transport")? {
            None => Transport::default(),
            Some(s) => s
                .parse::<Transport>()
                .map_err(|e| format!("--transport: {e}"))?,
        };
        let metrics_port = match take_value(args, "--metrics-port")? {
            None => None,
            Some(s) => Some(
                s.parse::<u16>()
                    .map_err(|_| format!("--metrics-port: expected a port number, got `{s}`"))?,
            ),
        };
        let access_log = take_value(args, "--access-log")?.map(std::path::PathBuf::from);
        let access_log_sample = positive(args, "--access-log-sample")?.unwrap_or(1);
        let slow_ms = positive(args, "--slow-ms")?;
        if let Some(stray) = args.first() {
            return Err(format!("serve: unexpected argument `{stray}`"));
        }
        Ok((
            port,
            timeout_ms,
            workers,
            queue_depth,
            cache_dir,
            transport,
            metrics_port,
            access_log,
            access_log_sample,
            slow_ms,
        ))
    })();
    let (
        port,
        timeout_ms,
        workers,
        queue_depth,
        cache_dir,
        transport,
        metrics_port,
        access_log,
        access_log_sample,
        slow_ms,
    ) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let config = ServeConfig {
        workers,
        queue_depth,
        timeout_ms,
        cache_dir,
        default_jobs,
        transport,
        metrics_port,
        access_log,
        access_log_sample,
        slow_ms,
        ..ServeConfig::default()
    };

    let served = if stdin_mode {
        serve_stream(
            config,
            &mut std::io::stdin().lock(),
            &mut std::io::stdout().lock(),
        )
    } else {
        install_sigint_handler();
        match Server::bind(port, config) {
            Ok(server) => match server.local_addr() {
                Ok(addr) => {
                    // Both startup banners are machine-read (ci.sh greps the
                    // ephemeral ports out of them); keep the formats stable.
                    println!("rstudy-serve: listening on {addr}");
                    if let Some(maddr) = server.metrics_addr() {
                        println!("rstudy-serve: metrics on {maddr}");
                    }
                    use std::io::Write;
                    let _ = std::io::stdout().flush();
                    server.run()
                }
                Err(e) => Err(e),
            },
            Err(e) => Err(e),
        }
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses and runs the `loadgen` subcommand: replay corpus programs
/// against a server and write the `BENCH_serve.json` (and optionally
/// `BENCH_suite.json`) baselines. Exits non-zero if any request failed, so
/// CI can assert on the exit code alone.
fn cmd_loadgen(args: &mut Vec<String>) -> ExitCode {
    use rust_safety_study::serve::loadgen::{bench_suite, run, LoadgenConfig};

    let parsed = (|| {
        let mut config = LoadgenConfig::default();
        if let Some(s) = take_value(args, "--requests")? {
            config.requests = s
                .parse::<usize>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("--requests: expected a positive integer, got `{s}`"))?;
        }
        if let Some(s) = take_value(args, "--rate")? {
            config.rate = s
                .parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r >= 0.0)
                .ok_or_else(|| format!("--rate: expected requests/second, got `{s}`"))?;
        }
        if let Some(s) = take_value(args, "--connections")? {
            config.connections =
                s.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                    format!("--connections: expected a positive integer, got `{s}`")
                })?;
        }
        if let Some(s) = take_value(args, "--addr")? {
            config.addr = Some(
                s.parse()
                    .map_err(|_| format!("--addr: expected host:port, got `{s}`"))?,
            );
        }
        if let Some(s) = take_value(args, "--mix")? {
            config.mix = s.split(',').map(|m| m.trim().to_owned()).collect();
        }
        if let Some(s) = take_value(args, "--manifest")? {
            config.manifest = Some(std::path::PathBuf::from(s));
        }
        if let Some(s) = take_value(args, "--transport")? {
            config.transport = s.parse().map_err(|e| format!("--transport: {e}"))?;
        }
        config.scrape = take_flag(args, "--scrape");
        if let Some(s) = take_value(args, "--scrape-addr")? {
            config.scrape_addr = Some(
                s.parse()
                    .map_err(|_| format!("--scrape-addr: expected host:port, got `{s}`"))?,
            );
        }
        if config.scrape && config.addr.is_some() && config.scrape_addr.is_none() {
            return Err("--scrape with --addr needs --scrape-addr".to_owned());
        }
        let out = take_value(args, "--out")?.unwrap_or_else(|| "BENCH_serve.json".to_owned());
        let suite_out = take_value(args, "--suite-out")?;
        if let Some(stray) = args.first() {
            return Err(format!("loadgen: unexpected argument `{stray}`"));
        }
        Ok((config, out, suite_out))
    })();
    let (config, out, suite_out) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    let json =
        serde_json::to_string_pretty(&report.to_value()).expect("report serialization cannot fail");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("loadgen: {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if let Some(path) = suite_out {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let jobs_list = if cores > 1 { vec![1, cores] } else { vec![1] };
        let value = bench_suite(&jobs_list, 2);
        let json = serde_json::to_string_pretty(&value).expect("report serialization cannot fail");
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("loadgen: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if report.errors > 0 {
        eprintln!("loadgen: {} request(s) failed", report.errors);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Prints the telemetry trace event log (used by `check --trace`).
fn print_trace_events() {
    if !rstudy_telemetry::tracing() {
        return;
    }
    let snap = rstudy_telemetry::snapshot();
    for e in &snap.events {
        println!("  {}", e.message);
    }
    if snap.events_dropped > 0 {
        println!("  ... {} trace event(s) dropped", snap.events_dropped);
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("run: missing <file.mir>");
        return ExitCode::from(2);
    };
    let mut config = InterpreterConfig::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                config.policy = SchedulePolicy::Random(seed);
            }
            "--max-steps" => {
                config.max_steps = it.next().and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
            }
            "--trace" => {
                config.trace_tail = 32;
            }
            other => {
                eprintln!("run: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let outcome = Interpreter::new(&program).with_config(config).run();
    println!("steps: {}", outcome.steps);
    if config.trace_tail > 0 {
        // The interpreter records every scheduled step into the telemetry
        // event log; print the last `trace_tail` of them.
        let snap = rstudy_telemetry::snapshot();
        let tail: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.message.starts_with("interp:"))
            .collect();
        let skip = tail.len().saturating_sub(config.trace_tail);
        println!("trace (last {} steps):", tail.len() - skip);
        for e in &tail[skip..] {
            println!("  {}", e.message);
        }
    }
    for r in &outcome.races {
        println!("{r}");
    }
    if outcome.leaked_heap_blocks > 0 {
        println!("leaked heap blocks: {}", outcome.leaked_heap_blocks);
    }
    match &outcome.fault {
        Some(f) => {
            println!("fault: {f}");
            ExitCode::FAILURE
        }
        None => {
            println!("returned: {:?}", outcome.return_value);
            if outcome.races.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("lint: missing <file.mir>");
        return ExitCode::from(2);
    };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    for (name, body) in program.iter() {
        let sections = lints::critical_sections(body);
        for s in sections {
            println!(
                "{name}: lock acquired at {} (guard {}) — implicit unlock at {:?}",
                s.acquired_at, s.guard, s.released_at
            );
        }
    }
    for h in lints::blocking_in_critical_section(&program) {
        println!(
            "{}: blocking `{}` at {} while a lock is held",
            h.function, h.operation, h.location
        );
    }
    for c in lints::interior_mutability_calls(&program) {
        println!(
            "{}: call to interior-mutability function `{}` at {} — review its synchronization",
            c.caller, c.callee, c.location
        );
    }
    ExitCode::SUCCESS
}

fn cmd_scan(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("scan: missing <path>...");
        return ExitCode::from(2);
    }
    let mut stats = rust_safety_study::scan::stats::ScanStats::default();
    for a in args {
        scan_path(Path::new(a), &mut stats);
    }
    print!("{}", stats.render());
    ExitCode::SUCCESS
}

fn scan_path(path: &Path, stats: &mut rust_safety_study::scan::stats::ScanStats) {
    use rust_safety_study::scan::{scan_source, stats::ScanStats};
    if path.is_dir() {
        if let Ok(entries) = std::fs::read_dir(path) {
            for e in entries.flatten() {
                scan_path(&e.path(), stats);
            }
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        if let Ok(src) = std::fs::read_to_string(path) {
            let usages = scan_source(&src);
            for u in &usages {
                println!(
                    "{}:{}: unsafe {:?} ({:?})",
                    path.display(),
                    u.line,
                    u.kind,
                    u.purpose
                );
            }
            stats.merge(&ScanStats::from_usages(&usages));
        }
    }
}

fn cmd_report(args: &[String]) -> ExitCode {
    use rust_safety_study::dataset;
    if args.iter().any(|a| a == "--json") {
        match dataset::export::DatasetBundle::build().to_json() {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("report: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    print!("{}", dataset::tables::render_table1());
    println!();
    print!("{}", dataset::tables::render_table2());
    println!();
    print!("{}", dataset::tables::render_table3());
    println!();
    print!("{}", dataset::tables::render_table4());
    println!();
    print!("{}", dataset::figures::render_figure1());
    println!();
    print!("{}", dataset::figures::render_figure2());
    println!();
    print!("{}", dataset::unsafe_usages::render());
    ExitCode::SUCCESS
}

fn cmd_corpus(args: &[String]) -> ExitCode {
    use rust_safety_study::corpus::all_entries;
    match args.first() {
        None => {
            for e in all_entries() {
                println!(
                    "{:<28} static={:<40} {}",
                    e.name,
                    format!("{:?}", e.static_bugs),
                    e.description
                );
            }
            ExitCode::SUCCESS
        }
        Some(name) => match all_entries().into_iter().find(|e| e.name == *name) {
            Some(e) => {
                print!("{}", e.source.trim_start());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("corpus: no entry named `{name}`");
                ExitCode::FAILURE
            }
        },
    }
}
